//! Native interconnect libraries (paper §4.2).
//!
//! "A set of native interconnect libraries implement all low-level platform
//! specific I/O calls ... Every library exposes its API towards drivers as
//! a series of standard event handlers." Drivers `signal` operations into a
//! library; completions come back as events through the router, preserving
//! the split-phase model. Wire time is respected by *deferring* completion
//! events on the virtual clock, and every operation reports its CPU cost
//! and bus energy.

use std::collections::HashMap;

use upnp_bus::adc::{Adc, AnalogSource};
use upnp_bus::i2c::I2cBus;
use upnp_bus::spi::SpiBus;
use upnp_bus::uart::{Parity, Uart, UartConfig, UartDevice, UartError, UartFrameFormat};
use upnp_bus::Environment;
use upnp_dsl::events::{errors, ids, libs};
use upnp_sim::{CpuCost, SimDuration, SimRng};

use crate::cost::VmCostModel;
use crate::router::{Endpoint, RoutedEvent};
use crate::value::Cell;

/// The hardware a Thing's runtime drives: one controller per bus family
/// plus the peripheral models currently attached through the µPnP
/// connector's pin mux.
pub struct HwContext {
    /// The simulated physical world.
    pub env: Environment,
    /// The MCU's ADC.
    pub adc: Adc,
    /// The (single) UART port.
    pub uart: Uart,
    /// The I²C bus with attached slaves.
    pub i2c: I2cBus,
    /// The SPI bus.
    pub spi: SpiBus,
    /// Deterministic noise source.
    pub rng: SimRng,
    /// Analog sources keyed by the driver slot that owns them.
    pub analog_sources: HashMap<u8, Box<dyn AnalogSource>>,
    /// The device on the far end of the UART, if any.
    pub uart_device: Option<Box<dyn UartDevice>>,
}

impl HwContext {
    /// Creates a context with default bus models and an empty environment.
    pub fn new(seed: u64) -> Self {
        HwContext {
            env: Environment::default(),
            adc: Adc::atmega128rfa1(),
            uart: Uart::new(),
            i2c: I2cBus::new(),
            spi: SpiBus::new(),
            rng: SimRng::seed(seed),
            analog_sources: HashMap::new(),
            uart_device: None,
        }
    }
}

impl std::fmt::Debug for HwContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwContext")
            .field("analog_sources", &self.analog_sources.len())
            .field("uart_device", &self.uart_device.is_some())
            .finish_non_exhaustive()
    }
}

/// A completion the runtime must act on later (virtual-time deferred).
#[derive(Debug, Clone, PartialEq)]
pub enum DeferredAction {
    /// Post a routed event.
    Post(RoutedEvent),
    /// Fire driver `slot`'s software timer if `generation` is still
    /// current (cancellation = generation bump).
    TimerFired {
        /// Target driver slot.
        slot: u8,
        /// Timer generation at arm time.
        generation: u64,
    },
    /// Declare a UART read timed out if no byte arrived since
    /// `generation`.
    UartTimeout {
        /// The slot that issued `uart.read`.
        slot: u8,
        /// RX generation at arm time.
        generation: u64,
    },
}

/// The result of one native-library operation.
#[derive(Debug, Default)]
pub struct NativeResult {
    /// CPU cost of servicing the call.
    pub cost: CpuCost,
    /// Events posted immediately (typically errors).
    pub immediate: Vec<RoutedEvent>,
    /// Actions deferred on the virtual clock (relative delays).
    pub deferred: Vec<(SimDuration, DeferredAction)>,
    /// Energy consumed on the bus, joules.
    pub bus_energy_j: f64,
}

impl NativeResult {
    fn err(slot: u8, error_id: u8, cost: CpuCost) -> NativeResult {
        NativeResult {
            cost,
            immediate: vec![RoutedEvent {
                dst: Endpoint::Driver(slot),
                event: error_id,
                args: Vec::new(),
            }],
            ..Default::default()
        }
    }
}

/// Mutable state of all native libraries.
#[derive(Debug, Default)]
pub struct NativeLibs {
    /// The slot currently subscribed to UART RX, if any.
    pub uart_reader: Option<u8>,
    /// RX generation: bumps on every delivered byte; used to validate
    /// timeout deadlines.
    pub uart_rx_gen: u64,
    /// Per-slot I²C slave address configured with `i2c.init`.
    pub i2c_addr: HashMap<u8, u8>,
    /// Per-slot timer generation (cancel = bump).
    pub timer_gen: HashMap<u8, u64>,
    cost_model: VmCostModel,
}

/// How long the UART library waits for data before posting `timeOut`.
pub const UART_READ_TIMEOUT: SimDuration = SimDuration::from_millis(2_000);

/// Largest I²C read a driver may request in one operation.
pub const I2C_MAX_READ: usize = 32;

impl NativeLibs {
    /// Creates empty library state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles `signal <lib>.<op>(args)` from driver `slot`.
    pub fn handle(
        &mut self,
        slot: u8,
        lib: u8,
        op: u8,
        args: &[Cell],
        hw: &mut HwContext,
    ) -> NativeResult {
        let base = self.cost_model.native_call();
        match lib {
            x if x == libs::UART => self.uart_op(slot, op, args, hw, base),
            x if x == libs::ADC => self.adc_op(slot, op, hw, base),
            x if x == libs::I2C => self.i2c_op(slot, op, args, hw, base),
            x if x == libs::SPI => self.spi_op(slot, op, args, hw, base),
            x if x == libs::TIMER => self.timer_op(slot, op, args, base),
            _ => NativeResult::err(slot, errors::BUS_ERROR, base),
        }
    }

    fn uart_op(
        &mut self,
        slot: u8,
        op: u8,
        args: &[Cell],
        hw: &mut HwContext,
        base: CpuCost,
    ) -> NativeResult {
        match op {
            // init(baud, parity, stop, data)
            0 => {
                let [baud, parity, stop, data] = args else {
                    return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base);
                };
                let parity = match parity.as_i32() {
                    0 => Parity::None,
                    1 => Parity::Even,
                    2 => Parity::Odd,
                    _ => return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base),
                };
                let config = UartConfig {
                    baud: baud.as_i32().max(0) as u32,
                    format: UartFrameFormat {
                        data_bits: data.as_i32().clamp(0, 255) as u8,
                        parity,
                        stop_bits: stop.as_i32().clamp(0, 255) as u8,
                    },
                };
                match hw.uart.init(slot as u32, config) {
                    Ok(()) => NativeResult {
                        cost: base,
                        ..Default::default()
                    },
                    Err(UartError::PortInUse) => NativeResult::err(slot, errors::UART_IN_USE, base),
                    Err(_) => NativeResult::err(slot, errors::INVALID_CONFIGURATION, base),
                }
            }
            // reset()
            1 => {
                hw.uart.reset();
                if self.uart_reader == Some(slot) {
                    self.uart_reader = None;
                }
                NativeResult {
                    cost: base,
                    ..Default::default()
                }
            }
            // read(): subscribe to RX; data arrives via pump; arm timeout.
            2 => {
                if hw.uart.config().is_none() {
                    return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base);
                }
                self.uart_reader = Some(slot);
                NativeResult {
                    cost: base,
                    deferred: vec![(
                        UART_READ_TIMEOUT,
                        DeferredAction::UartTimeout {
                            slot,
                            generation: self.uart_rx_gen,
                        },
                    )],
                    ..Default::default()
                }
            }
            // write(byte)
            3 => {
                let byte = args.first().map(|c| c.as_i32() as u8).unwrap_or(0);
                let Some(device) = hw.uart_device.as_mut() else {
                    return NativeResult::err(slot, errors::BUS_ERROR, base);
                };
                match hw.uart.write(device.as_mut(), &[byte]) {
                    Ok(tx) => NativeResult {
                        cost: base,
                        bus_energy_j: tx.energy_j,
                        deferred: vec![(
                            tx.duration,
                            DeferredAction::Post(RoutedEvent {
                                dst: Endpoint::Driver(slot),
                                event: ids::WRITE_DONE,
                                args: Vec::new(),
                            }),
                        )],
                        ..Default::default()
                    },
                    Err(_) => NativeResult::err(slot, errors::INVALID_CONFIGURATION, base),
                }
            }
            _ => NativeResult::err(slot, errors::BUS_ERROR, base),
        }
    }

    fn adc_op(&mut self, slot: u8, op: u8, hw: &mut HwContext, base: CpuCost) -> NativeResult {
        match op {
            // init()
            0 => NativeResult {
                cost: base,
                ..Default::default()
            },
            // read(): sample the slot's analog source.
            1 => {
                let Some(source) = hw.analog_sources.get(&slot) else {
                    return NativeResult::err(slot, errors::BUS_ERROR, base);
                };
                let (reading, tx) = hw.adc.sample(source.as_ref(), &hw.env, &mut hw.rng);
                NativeResult {
                    cost: base,
                    bus_energy_j: tx.energy_j,
                    deferred: vec![(
                        tx.duration,
                        DeferredAction::Post(RoutedEvent {
                            dst: Endpoint::Driver(slot),
                            event: ids::SAMPLE_DONE,
                            args: vec![Cell::from_i32(reading.raw as i32)],
                        }),
                    )],
                    ..Default::default()
                }
            }
            _ => NativeResult::err(slot, errors::BUS_ERROR, base),
        }
    }

    fn i2c_op(
        &mut self,
        slot: u8,
        op: u8,
        args: &[Cell],
        hw: &mut HwContext,
        base: CpuCost,
    ) -> NativeResult {
        match op {
            // init(addr)
            0 => {
                let addr = args.first().map(|c| c.as_i32() as u8).unwrap_or(0);
                if !hw.i2c.probe(addr) {
                    return NativeResult::err(slot, errors::BUS_ERROR, base);
                }
                self.i2c_addr.insert(slot, addr);
                NativeResult {
                    cost: base,
                    ..Default::default()
                }
            }
            // write(reg, value)
            1 => {
                let Some(&addr) = self.i2c_addr.get(&slot) else {
                    return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base);
                };
                let reg = args.first().map(|c| c.as_i32() as u8).unwrap_or(0);
                let val = args.get(1).map(|c| c.as_i32() as u8).unwrap_or(0);
                match hw.i2c.write(addr, &[reg, val], &mut hw.env) {
                    Ok(tx) => NativeResult {
                        cost: base,
                        bus_energy_j: tx.energy_j,
                        deferred: vec![(
                            tx.duration,
                            DeferredAction::Post(RoutedEvent {
                                dst: Endpoint::Driver(slot),
                                event: ids::WRITE_DONE,
                                args: Vec::new(),
                            }),
                        )],
                        ..Default::default()
                    },
                    Err(_) => NativeResult::err(slot, errors::BUS_ERROR, base),
                }
            }
            // read(reg, n): delivers n i2cdata events then i2cDone.
            2 => {
                let Some(&addr) = self.i2c_addr.get(&slot) else {
                    return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base);
                };
                let reg = args.first().map(|c| c.as_i32() as u8).unwrap_or(0);
                let n = args.get(1).map(|c| c.as_i32()).unwrap_or(0);
                if n <= 0 || n as usize > I2C_MAX_READ {
                    return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base);
                }
                match hw.i2c.write_read(addr, reg, n as usize, &mut hw.env) {
                    Ok((data, tx)) => {
                        let per_byte = tx.duration / (data.len() as u64 + 1);
                        let mut deferred: Vec<(SimDuration, DeferredAction)> = data
                            .iter()
                            .enumerate()
                            .map(|(i, &b)| {
                                (
                                    per_byte * (i as u64 + 1),
                                    DeferredAction::Post(RoutedEvent {
                                        dst: Endpoint::Driver(slot),
                                        event: ids::I2C_DATA,
                                        args: vec![
                                            Cell::from_i32(b as i32),
                                            Cell::from_i32(i as i32),
                                        ],
                                    }),
                                )
                            })
                            .collect();
                        deferred.push((
                            tx.duration,
                            DeferredAction::Post(RoutedEvent {
                                dst: Endpoint::Driver(slot),
                                event: ids::I2C_DONE,
                                args: Vec::new(),
                            }),
                        ));
                        NativeResult {
                            cost: base,
                            bus_energy_j: tx.energy_j,
                            deferred,
                            ..Default::default()
                        }
                    }
                    Err(_) => NativeResult::err(slot, errors::BUS_ERROR, base),
                }
            }
            _ => NativeResult::err(slot, errors::BUS_ERROR, base),
        }
    }

    fn spi_op(
        &mut self,
        slot: u8,
        op: u8,
        args: &[Cell],
        hw: &mut HwContext,
        base: CpuCost,
    ) -> NativeResult {
        match op {
            // init()
            0 => NativeResult {
                cost: base,
                ..Default::default()
            },
            // transfer(n): clock n bytes, deliver spidata × n then spiDone.
            1 => {
                let n = args.first().map(|c| c.as_i32()).unwrap_or(0);
                if n <= 0 || n > 32 {
                    return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base);
                }
                let tx_bytes = vec![0u8; n as usize];
                match hw.spi.transfer(&tx_bytes, &mut hw.env) {
                    Some((rx, tx)) => {
                        let per_byte = tx.duration / (rx.len() as u64).max(1);
                        let mut deferred: Vec<(SimDuration, DeferredAction)> = rx
                            .iter()
                            .enumerate()
                            .map(|(i, &b)| {
                                (
                                    per_byte * (i as u64 + 1),
                                    DeferredAction::Post(RoutedEvent {
                                        dst: Endpoint::Driver(slot),
                                        event: ids::SPI_DATA,
                                        args: vec![
                                            Cell::from_i32(b as i32),
                                            Cell::from_i32(i as i32),
                                        ],
                                    }),
                                )
                            })
                            .collect();
                        deferred.push((
                            tx.duration,
                            DeferredAction::Post(RoutedEvent {
                                dst: Endpoint::Driver(slot),
                                event: ids::SPI_DONE,
                                args: Vec::new(),
                            }),
                        ));
                        NativeResult {
                            cost: base,
                            bus_energy_j: tx.energy_j,
                            deferred,
                            ..Default::default()
                        }
                    }
                    None => NativeResult::err(slot, errors::BUS_ERROR, base),
                }
            }
            _ => NativeResult::err(slot, errors::BUS_ERROR, base),
        }
    }

    fn timer_op(&mut self, slot: u8, op: u8, args: &[Cell], base: CpuCost) -> NativeResult {
        match op {
            // start(ms)
            0 => {
                let ms = args.first().map(|c| c.as_i32()).unwrap_or(0);
                if ms <= 0 {
                    return NativeResult::err(slot, errors::INVALID_CONFIGURATION, base);
                }
                let generation = self.timer_gen.entry(slot).or_insert(0);
                *generation += 1;
                NativeResult {
                    cost: base,
                    deferred: vec![(
                        SimDuration::from_millis(ms as u64),
                        DeferredAction::TimerFired {
                            slot,
                            generation: *generation,
                        },
                    )],
                    ..Default::default()
                }
            }
            // cancel()
            1 => {
                *self.timer_gen.entry(slot).or_insert(0) += 1;
                NativeResult {
                    cost: base,
                    ..Default::default()
                }
            }
            _ => NativeResult::err(slot, errors::BUS_ERROR, base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_bus::peripherals::{Bmp180, Tmp36, BMP180_I2C_ADDR};

    fn cells(vals: &[i32]) -> Vec<Cell> {
        vals.iter().map(|&v| Cell::from_i32(v)).collect()
    }

    #[test]
    fn uart_init_and_in_use() {
        let mut hw = HwContext::new(1);
        let mut libs_state = NativeLibs::new();
        let r = libs_state.handle(0, libs::UART, 0, &cells(&[9600, 0, 1, 8]), &mut hw);
        assert!(r.immediate.is_empty());
        // Second slot gets uartInUse.
        let r = libs_state.handle(1, libs::UART, 0, &cells(&[9600, 0, 1, 8]), &mut hw);
        assert_eq!(r.immediate[0].event, errors::UART_IN_USE);
    }

    #[test]
    fn uart_bad_config_posts_invalid_configuration() {
        let mut hw = HwContext::new(1);
        let mut libs_state = NativeLibs::new();
        let r = libs_state.handle(0, libs::UART, 0, &cells(&[1234, 0, 1, 8]), &mut hw);
        assert_eq!(r.immediate[0].event, errors::INVALID_CONFIGURATION);
        let r = libs_state.handle(0, libs::UART, 0, &cells(&[9600, 7, 1, 8]), &mut hw);
        assert_eq!(r.immediate[0].event, errors::INVALID_CONFIGURATION);
    }

    #[test]
    fn uart_read_arms_timeout() {
        let mut hw = HwContext::new(1);
        let mut libs_state = NativeLibs::new();
        libs_state.handle(0, libs::UART, 0, &cells(&[9600, 0, 1, 8]), &mut hw);
        let r = libs_state.handle(0, libs::UART, 2, &[], &mut hw);
        assert_eq!(libs_state.uart_reader, Some(0));
        assert_eq!(r.deferred.len(), 1);
        assert_eq!(r.deferred[0].0, UART_READ_TIMEOUT);
        assert!(matches!(
            r.deferred[0].1,
            DeferredAction::UartTimeout { slot: 0, .. }
        ));
    }

    #[test]
    fn adc_read_defers_sample_done() {
        let mut hw = HwContext::new(2);
        hw.env.temperature_c = 25.0;
        hw.analog_sources.insert(0, Box::new(Tmp36::new()));
        let mut libs_state = NativeLibs::new();
        let r = libs_state.handle(0, libs::ADC, 1, &[], &mut hw);
        assert_eq!(r.deferred.len(), 1);
        let (delay, DeferredAction::Post(ev)) = &r.deferred[0] else {
            panic!();
        };
        assert_eq!(*delay, SimDuration::from_micros(104));
        assert_eq!(ev.event, ids::SAMPLE_DONE);
        // 0.75 V on a 10-bit 3.3 V ADC ≈ 233 counts.
        let raw = ev.args[0].as_i32();
        assert!((raw - 233).abs() <= 2, "raw {raw}");
        assert!(r.bus_energy_j > 0.0);
    }

    #[test]
    fn adc_without_source_is_bus_error() {
        let mut hw = HwContext::new(3);
        let mut libs_state = NativeLibs::new();
        let r = libs_state.handle(0, libs::ADC, 1, &[], &mut hw);
        assert_eq!(r.immediate[0].event, errors::BUS_ERROR);
    }

    #[test]
    fn i2c_init_probes_address() {
        let mut hw = HwContext::new(4);
        hw.i2c
            .attach(BMP180_I2C_ADDR, Box::new(Bmp180::noiseless(1)));
        let mut libs_state = NativeLibs::new();
        let ok = libs_state.handle(0, libs::I2C, 0, &cells(&[0x77]), &mut hw);
        assert!(ok.immediate.is_empty());
        let bad = libs_state.handle(1, libs::I2C, 0, &cells(&[0x10]), &mut hw);
        assert_eq!(bad.immediate[0].event, errors::BUS_ERROR);
    }

    #[test]
    fn i2c_read_delivers_data_then_done() {
        let mut hw = HwContext::new(5);
        hw.i2c
            .attach(BMP180_I2C_ADDR, Box::new(Bmp180::noiseless(1)));
        let mut libs_state = NativeLibs::new();
        libs_state.handle(0, libs::I2C, 0, &cells(&[0x77]), &mut hw);
        let r = libs_state.handle(0, libs::I2C, 2, &cells(&[0xaa, 4]), &mut hw);
        assert_eq!(r.deferred.len(), 5, "4 data + 1 done");
        // Events are time-ordered and indexed.
        for (i, (_, action)) in r.deferred[..4].iter().enumerate() {
            let DeferredAction::Post(ev) = action else {
                panic!()
            };
            assert_eq!(ev.event, ids::I2C_DATA);
            assert_eq!(ev.args[1].as_i32(), i as i32);
        }
        let DeferredAction::Post(done) = &r.deferred[4].1 else {
            panic!()
        };
        assert_eq!(done.event, ids::I2C_DONE);
    }

    #[test]
    fn i2c_read_without_init_is_invalid() {
        let mut hw = HwContext::new(6);
        let mut libs_state = NativeLibs::new();
        let r = libs_state.handle(0, libs::I2C, 2, &cells(&[0xaa, 4]), &mut hw);
        assert_eq!(r.immediate[0].event, errors::INVALID_CONFIGURATION);
    }

    #[test]
    fn i2c_read_size_limit() {
        let mut hw = HwContext::new(7);
        hw.i2c
            .attach(BMP180_I2C_ADDR, Box::new(Bmp180::noiseless(1)));
        let mut libs_state = NativeLibs::new();
        libs_state.handle(0, libs::I2C, 0, &cells(&[0x77]), &mut hw);
        let r = libs_state.handle(0, libs::I2C, 2, &cells(&[0xaa, 33]), &mut hw);
        assert_eq!(r.immediate[0].event, errors::INVALID_CONFIGURATION);
    }

    #[test]
    fn timer_start_and_cancel_generations() {
        let mut libs_state = NativeLibs::new();
        let r = libs_state.timer_op(0, 0, &cells(&[5]), CpuCost::ZERO);
        let DeferredAction::TimerFired { generation, .. } = r.deferred[0].1 else {
            panic!();
        };
        assert_eq!(generation, 1);
        // Cancel bumps the generation, so the pending fire is stale.
        libs_state.timer_op(0, 1, &[], CpuCost::ZERO);
        assert_eq!(libs_state.timer_gen[&0], 2);
        let r = libs_state.timer_op(0, 0, &cells(&[0]), CpuCost::ZERO);
        assert_eq!(r.immediate[0].event, errors::INVALID_CONFIGURATION);
    }

    #[test]
    fn spi_transfer_defers_bytes() {
        use upnp_bus::peripherals::Max6675;
        let mut hw = HwContext::new(8);
        hw.spi.attach(Box::new(Max6675::new()));
        hw.env.temperature_c = 100.0;
        let mut libs_state = NativeLibs::new();
        let r = libs_state.handle(0, libs::SPI, 1, &cells(&[2]), &mut hw);
        assert_eq!(r.deferred.len(), 3, "2 data + 1 done");
    }
}
