//! The peripheral controller (paper §4.2).
//!
//! "The peripheral controller interfaces with the µPnP control board and
//! implements the hardware identification algorithm. Peripheral connection
//! or disconnection is detected based upon an interrupt. The peripheral
//! identification circuit is then activated and the timed pulse that
//! results is read via a digital I/O pin." This module services the
//! interrupt: it runs a scan and diffs the result against the known
//! peripheral set, producing connection/disconnection change records the
//! runtime turns into `init`/`destroy` driver events and network
//! advertisements.

use std::collections::HashMap;

use upnp_hw::board::{ChannelResult, ControlBoard, ScanOutcome};
use upnp_hw::channels::ChannelId;
use upnp_hw::id::DeviceTypeId;
use upnp_sim::SimTime;

/// A detected change in the peripheral population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeripheralChange {
    /// A peripheral appeared on a channel.
    Connected {
        /// The channel it occupies.
        channel: ChannelId,
        /// Its identified type.
        device_id: DeviceTypeId,
    },
    /// A peripheral disappeared from a channel.
    Disconnected {
        /// The channel it occupied.
        channel: ChannelId,
        /// The type that was known there.
        device_id: DeviceTypeId,
    },
    /// A channel produced pulses that failed to decode.
    IdentificationFailed {
        /// The failing channel.
        channel: ChannelId,
    },
}

/// The peripheral controller: control board + known-population state.
pub struct PeripheralController {
    board: ControlBoard,
    known: HashMap<ChannelId, DeviceTypeId>,
}

impl PeripheralController {
    /// Wraps a control board.
    pub fn new(board: ControlBoard) -> Self {
        PeripheralController {
            board,
            known: HashMap::new(),
        }
    }

    /// The underlying board (plugging/unplugging, traces, energy).
    pub fn board(&self) -> &ControlBoard {
        &self.board
    }

    /// Mutable access to the board.
    pub fn board_mut(&mut self) -> &mut ControlBoard {
        &mut self.board
    }

    /// The currently known peripheral on `channel`.
    pub fn known(&self, channel: ChannelId) -> Option<DeviceTypeId> {
        self.known.get(&channel).copied()
    }

    /// True if the board's interrupt line is raised.
    pub fn interrupt_pending(&self) -> bool {
        self.board.interrupt_pending()
    }

    /// Services the interrupt: runs the identification scan and diffs the
    /// outcome against the known population.
    ///
    /// Returns the scan (for timing/energy accounting) and the changes.
    pub fn service_interrupt(
        &mut self,
        now: SimTime,
        temp_c: f64,
    ) -> (ScanOutcome, Vec<PeripheralChange>) {
        let outcome = self.board.scan(now, temp_c);
        let mut changes = Vec::new();
        for reading in &outcome.channels {
            let channel = reading.channel;
            let previous = self.known.get(&channel).copied();
            match reading.result {
                ChannelResult::Empty => {
                    if let Some(device_id) = previous {
                        self.known.remove(&channel);
                        changes.push(PeripheralChange::Disconnected { channel, device_id });
                    }
                }
                ChannelResult::Identified(device_id) => match previous {
                    Some(old) if old == device_id => {}
                    Some(old) => {
                        // Hot-swap within one scan window: report both.
                        self.known.insert(channel, device_id);
                        changes.push(PeripheralChange::Disconnected {
                            channel,
                            device_id: old,
                        });
                        changes.push(PeripheralChange::Connected { channel, device_id });
                    }
                    None => {
                        self.known.insert(channel, device_id);
                        changes.push(PeripheralChange::Connected { channel, device_id });
                    }
                },
                ChannelResult::DecodeFailed { .. } => {
                    changes.push(PeripheralChange::IdentificationFailed { channel });
                }
            }
        }
        (outcome, changes)
    }
}

impl std::fmt::Debug for PeripheralController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeripheralController")
            .field("known", &self.known.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_hw::id::prototypes;
    use upnp_hw::peripheral::{Interconnect, PeripheralBoard};

    fn controller() -> PeripheralController {
        PeripheralController::new(ControlBoard::ideal())
    }

    fn board_for(id: DeviceTypeId) -> PeripheralBoard {
        PeripheralBoard::manufacture_ideal(id, Interconnect::Adc).unwrap()
    }

    #[test]
    fn connect_then_disconnect() {
        let mut c = controller();
        c.board_mut()
            .plug(ChannelId(0), board_for(prototypes::TMP36))
            .unwrap();
        assert!(c.interrupt_pending());
        let (_, changes) = c.service_interrupt(SimTime::ZERO, 25.0);
        assert_eq!(
            changes,
            vec![PeripheralChange::Connected {
                channel: ChannelId(0),
                device_id: prototypes::TMP36
            }]
        );
        assert_eq!(c.known(ChannelId(0)), Some(prototypes::TMP36));

        c.board_mut().unplug(ChannelId(0)).unwrap();
        let (_, changes) = c.service_interrupt(SimTime::ZERO, 25.0);
        assert_eq!(
            changes,
            vec![PeripheralChange::Disconnected {
                channel: ChannelId(0),
                device_id: prototypes::TMP36
            }]
        );
        assert_eq!(c.known(ChannelId(0)), None);
    }

    #[test]
    fn rescan_without_changes_is_quiet() {
        let mut c = controller();
        c.board_mut()
            .plug(ChannelId(1), board_for(prototypes::BMP180))
            .unwrap();
        c.service_interrupt(SimTime::ZERO, 25.0);
        let (_, changes) = c.service_interrupt(SimTime::ZERO, 25.0);
        assert!(changes.is_empty());
    }

    #[test]
    fn hot_swap_reports_both_changes() {
        let mut c = controller();
        c.board_mut()
            .plug(ChannelId(0), board_for(prototypes::TMP36))
            .unwrap();
        c.service_interrupt(SimTime::ZERO, 25.0);
        c.board_mut().unplug(ChannelId(0)).unwrap();
        c.board_mut()
            .plug(ChannelId(0), board_for(prototypes::HIH4030))
            .unwrap();
        let (_, changes) = c.service_interrupt(SimTime::ZERO, 25.0);
        assert_eq!(changes.len(), 2);
        assert!(matches!(changes[0], PeripheralChange::Disconnected { .. }));
        assert!(matches!(
            changes[1],
            PeripheralChange::Connected {
                device_id,
                ..
            } if device_id == prototypes::HIH4030
        ));
    }

    #[test]
    fn multiple_channels_in_one_scan() {
        let mut c = controller();
        c.board_mut()
            .plug(ChannelId(0), board_for(prototypes::TMP36))
            .unwrap();
        c.board_mut()
            .plug(ChannelId(2), board_for(prototypes::ID20LA))
            .unwrap();
        let (outcome, changes) = c.service_interrupt(SimTime::ZERO, 25.0);
        assert_eq!(changes.len(), 2);
        assert_eq!(outcome.identified().count(), 2);
    }
}
