//! The stack-based bytecode interpreter.
//!
//! One [`DriverInstance`] exists per installed driver. Handlers execute
//! run-to-completion on a single operand stack (§4.2); they cannot block —
//! every I/O request leaves the VM as a [`SignalOut`] and completion comes
//! back as a later event. Faults (bad index, stack overflow, division by
//! zero, runaway loops) abort the handler and surface as [`VmError`]s that
//! the runtime converts into prioritized error events, exactly the error
//! model §4.1 describes.

use upnp_dsl::ast::Type;
use upnp_dsl::image::DriverImage;
use upnp_dsl::isa::Op;
use upnp_sim::CpuCost;

use crate::cost::VmCostModel;
use crate::value::Cell;

/// Operand stack depth (cells); shared ABI limit (see
/// [`upnp_dsl::vm_limits`]).
pub const STACK_DEPTH: usize = upnp_dsl::vm_limits::STACK_DEPTH;

/// Per-handler instruction budget; exceeding it is a fault (runaway
/// loop). Shared ABI limit.
pub const GAS_LIMIT: u64 = upnp_dsl::vm_limits::GAS_LIMIT;

/// Interpreter faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// Operand stack exceeded [`STACK_DEPTH`].
    StackOverflow,
    /// Pop from an empty stack (malformed bytecode).
    StackUnderflow,
    /// Array index out of bounds.
    OutOfRange,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Undecodable opcode.
    BadOpcode(u8),
    /// Jump target outside the code region.
    BadJump,
    /// Reference to a global/local slot that does not exist.
    BadSlot(u8),
    /// The handler exceeded [`GAS_LIMIT`] instructions.
    GasExhausted,
    /// The requested event has no handler in this driver.
    NoHandler(u8),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::StackOverflow => write!(f, "operand stack overflow"),
            VmError::StackUnderflow => write!(f, "operand stack underflow"),
            VmError::OutOfRange => write!(f, "array index out of range"),
            VmError::DivideByZero => write!(f, "division by zero"),
            VmError::BadOpcode(b) => write!(f, "bad opcode {b:#04x}"),
            VmError::BadJump => write!(f, "jump out of code region"),
            VmError::BadSlot(s) => write!(f, "bad variable slot {s}"),
            VmError::GasExhausted => write!(f, "instruction budget exhausted"),
            VmError::NoHandler(e) => write!(f, "no handler for event {e}"),
        }
    }
}

impl std::error::Error for VmError {}

/// A `signal` emitted by a handler, to be routed after it completes.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalOut {
    /// Destination library id (`libs::THIS` for driver-local events).
    pub lib: u8,
    /// Event or operation id.
    pub event: u8,
    /// Arguments, in declaration order.
    pub args: Vec<Cell>,
}

/// A value returned with the `return` keyword.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnValue {
    /// A scalar cell (with the producing element type if known).
    Scalar(Cell),
    /// A whole array global (element type + cells).
    Array(Type, Vec<Cell>),
}

/// Everything a handler execution produced.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerOutcome {
    /// Total execution cost in MCU cycles.
    pub cost: CpuCost,
    /// Number of instructions retired.
    pub instructions: u64,
    /// Signals emitted, in order.
    pub signals: Vec<SignalOut>,
    /// Value passed to `return`, if any.
    pub returned: Option<ReturnValue>,
    /// The fault that aborted the handler, if any.
    pub error: Option<VmError>,
}

/// One installed driver's execution state.
#[derive(Debug, Clone)]
pub struct DriverInstance {
    image: DriverImage,
    scalars: Vec<Cell>,
    scalar_types: Vec<Type>,
    arrays: Vec<Vec<Cell>>,
    array_types: Vec<Type>,
    cost_model: VmCostModel,
}

impl DriverInstance {
    /// Instantiates a driver from its image; globals are zeroed.
    pub fn new(image: DriverImage) -> Self {
        let mut scalars = Vec::new();
        let mut scalar_types = Vec::new();
        let mut arrays = Vec::new();
        let mut array_types = Vec::new();
        for g in &image.globals {
            match g.array_len {
                None => {
                    scalars.push(Cell::ZERO);
                    scalar_types.push(g.ty);
                }
                Some(len) => {
                    arrays.push(vec![Cell::ZERO; len as usize]);
                    array_types.push(g.ty);
                }
            }
        }
        DriverInstance {
            image,
            scalars,
            scalar_types,
            arrays,
            array_types,
            cost_model: VmCostModel,
        }
    }

    /// The driver's image.
    pub fn image(&self) -> &DriverImage {
        &self.image
    }

    /// True if the driver declares a handler for `event_id`.
    pub fn has_handler(&self, event_id: u8) -> bool {
        self.image.handler_for(event_id).is_some()
    }

    /// Reads a scalar global (diagnostics/tests).
    pub fn scalar(&self, slot: u8) -> Option<Cell> {
        self.scalars.get(slot as usize).copied()
    }

    /// Approximate RAM occupied by this instance's mutable state
    /// (globals + arrays + the operand stack), for Table 2 accounting.
    pub fn ram_bytes(&self) -> usize {
        self.scalars.len() * 4
            + self.arrays.iter().map(|a| a.len() * 4).sum::<usize>()
            + STACK_DEPTH * 4
    }

    /// Executes the handler for `event_id` with `args`.
    ///
    /// Never panics on malformed bytecode: all faults are reported in
    /// [`HandlerOutcome::error`].
    pub fn run_handler(&mut self, event_id: u8, args: &[Cell]) -> HandlerOutcome {
        let mut outcome = HandlerOutcome {
            cost: CpuCost::ZERO,
            instructions: 0,
            signals: Vec::new(),
            returned: None,
            error: None,
        };
        let Some(entry) = self.image.handler_for(event_id) else {
            outcome.error = Some(VmError::NoHandler(event_id));
            return outcome;
        };
        let mut pc = entry.offset as usize;
        let mut locals: Vec<Cell> = args.to_vec();
        locals.resize(entry.n_params.max(args.len() as u8) as usize, Cell::ZERO);
        let mut stack: Vec<Cell> = Vec::with_capacity(STACK_DEPTH);
        let code_len = self.image.code.len();

        macro_rules! fault {
            ($e:expr) => {{
                outcome.error = Some($e);
                return outcome;
            }};
        }
        macro_rules! pop {
            () => {
                match stack.pop() {
                    Some(v) => v,
                    None => fault!(VmError::StackUnderflow),
                }
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= STACK_DEPTH {
                    fault!(VmError::StackOverflow);
                }
                stack.push($v);
            }};
        }

        loop {
            if outcome.instructions >= GAS_LIMIT {
                fault!(VmError::GasExhausted);
            }
            if pc >= code_len {
                // Falling off the end terminates like RET (the compiler
                // always emits a terminator, but stay safe).
                break;
            }
            let byte = self.image.code[pc];
            let Some(op) = Op::from_byte(byte) else {
                fault!(VmError::BadOpcode(byte));
            };
            let n = op.operand_len();
            if pc + 1 + n > code_len {
                fault!(VmError::BadJump);
            }
            let operands = &self.image.code[pc + 1..pc + 1 + n];
            let mut next_pc = pc + 1 + n;
            outcome.instructions += 1;
            outcome.cost += self.cost_model.instruction(op);

            match op {
                Op::Nop => {}
                Op::Push8 => push!(Cell::from_i32(operands[0] as i8 as i32)),
                Op::Push16 => {
                    push!(Cell::from_i32(
                        i16::from_le_bytes([operands[0], operands[1]]) as i32
                    ))
                }
                Op::Push32 => push!(Cell::from_i32(i32::from_le_bytes(
                    operands.try_into().expect("len 4")
                ))),
                Op::PushF => push!(Cell::from_f32(f32::from_le_bytes(
                    operands.try_into().expect("len 4")
                ))),
                Op::Dup => {
                    let v = pop!();
                    push!(v);
                    push!(v);
                }
                Op::Pop => {
                    pop!();
                }
                Op::Swap => {
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(a);
                }

                Op::Ldg => {
                    let slot = operands[0];
                    match self.scalars.get(slot as usize) {
                        Some(v) => push!(*v),
                        None => fault!(VmError::BadSlot(slot)),
                    }
                }
                Op::Stg => {
                    let slot = operands[0] as usize;
                    let v = pop!();
                    if slot >= self.scalars.len() {
                        fault!(VmError::BadSlot(slot as u8));
                    }
                    self.scalars[slot] = apply_width(self.scalar_types[slot], v);
                }
                Op::Ldl => {
                    let slot = operands[0] as usize;
                    match locals.get(slot) {
                        Some(v) => push!(*v),
                        None => fault!(VmError::BadSlot(slot as u8)),
                    }
                }
                Op::Stl => {
                    let slot = operands[0] as usize;
                    let v = pop!();
                    if slot >= locals.len() {
                        fault!(VmError::BadSlot(slot as u8));
                    }
                    locals[slot] = v;
                }
                Op::Lda => {
                    let slot = operands[0] as usize;
                    let idx = pop!().as_i32();
                    let Some(arr) = self.arrays.get(slot) else {
                        fault!(VmError::BadSlot(slot as u8));
                    };
                    if idx < 0 || idx as usize >= arr.len() {
                        fault!(VmError::OutOfRange);
                    }
                    push!(arr[idx as usize]);
                }
                Op::Sta => {
                    let slot = operands[0] as usize;
                    let v = pop!();
                    let idx = pop!().as_i32();
                    let Some(ty) = self.array_types.get(slot).copied() else {
                        fault!(VmError::BadSlot(slot as u8));
                    };
                    let arr = &mut self.arrays[slot];
                    if idx < 0 || idx as usize >= arr.len() {
                        fault!(VmError::OutOfRange);
                    }
                    arr[idx as usize] = apply_width(ty, v);
                }
                Op::Len => {
                    let slot = operands[0] as usize;
                    match self.arrays.get(slot) {
                        Some(a) => push!(Cell::from_i32(a.len() as i32)),
                        None => fault!(VmError::BadSlot(slot as u8)),
                    }
                }

                Op::Add
                | Op::Sub
                | Op::Mul
                | Op::BAnd
                | Op::BOr
                | Op::BXor
                | Op::Shl
                | Op::Shr
                | Op::Eq
                | Op::Ne
                | Op::Lt
                | Op::Le
                | Op::Gt
                | Op::Ge => {
                    let b = pop!().as_i32();
                    let a = pop!().as_i32();
                    let r = match op {
                        Op::Add => a.wrapping_add(b),
                        Op::Sub => a.wrapping_sub(b),
                        Op::Mul => a.wrapping_mul(b),
                        Op::BAnd => a & b,
                        Op::BOr => a | b,
                        Op::BXor => a ^ b,
                        Op::Shl => a.wrapping_shl(b as u32 & 31),
                        Op::Shr => a.wrapping_shr(b as u32 & 31),
                        Op::Eq => (a == b) as i32,
                        Op::Ne => (a != b) as i32,
                        Op::Lt => (a < b) as i32,
                        Op::Le => (a <= b) as i32,
                        Op::Gt => (a > b) as i32,
                        Op::Ge => (a >= b) as i32,
                        _ => unreachable!(),
                    };
                    push!(Cell::from_i32(r));
                }
                Op::Div | Op::Mod => {
                    let b = pop!().as_i32();
                    let a = pop!().as_i32();
                    if b == 0 {
                        fault!(VmError::DivideByZero);
                    }
                    let r = match op {
                        Op::Div => a.wrapping_div(b),
                        _ => a.wrapping_rem(b),
                    };
                    push!(Cell::from_i32(r));
                }
                Op::Neg => {
                    let a = pop!().as_i32();
                    push!(Cell::from_i32(a.wrapping_neg()));
                }
                Op::BNot => {
                    let a = pop!().as_i32();
                    push!(Cell::from_i32(!a));
                }
                Op::LNot => {
                    let a = pop!().as_i32();
                    push!(Cell::from_i32((a == 0) as i32));
                }

                Op::FAdd
                | Op::FSub
                | Op::FMul
                | Op::FDiv
                | Op::FEq
                | Op::FNe
                | Op::FLt
                | Op::FLe
                | Op::FGt
                | Op::FGe => {
                    let b = pop!().as_f32();
                    let a = pop!().as_f32();
                    let cell = match op {
                        Op::FAdd => Cell::from_f32(a + b),
                        Op::FSub => Cell::from_f32(a - b),
                        Op::FMul => Cell::from_f32(a * b),
                        Op::FDiv => Cell::from_f32(a / b),
                        Op::FEq => Cell::from_i32((a == b) as i32),
                        Op::FNe => Cell::from_i32((a != b) as i32),
                        Op::FLt => Cell::from_i32((a < b) as i32),
                        Op::FLe => Cell::from_i32((a <= b) as i32),
                        Op::FGt => Cell::from_i32((a > b) as i32),
                        Op::FGe => Cell::from_i32((a >= b) as i32),
                        _ => unreachable!(),
                    };
                    push!(cell);
                }
                Op::FNeg => {
                    let a = pop!().as_f32();
                    push!(Cell::from_f32(-a));
                }
                Op::I2F => {
                    let a = pop!().as_i32();
                    push!(Cell::from_f32(a as f32));
                }
                Op::F2I => {
                    let a = pop!().as_f32();
                    push!(Cell::from_i32(a as i32));
                }

                Op::Jmp | Op::Jz | Op::Jnz => {
                    let delta = i16::from_le_bytes([operands[0], operands[1]]) as i64;
                    let take = match op {
                        Op::Jmp => true,
                        Op::Jz => !pop!().truthy(),
                        Op::Jnz => pop!().truthy(),
                        _ => unreachable!(),
                    };
                    if take {
                        let target = next_pc as i64 + delta;
                        if target < 0 || target as usize > code_len {
                            fault!(VmError::BadJump);
                        }
                        next_pc = target as usize;
                    }
                }

                Op::Sig => {
                    let (lib, event, argc) = (operands[0], operands[1], operands[2]);
                    let mut args = vec![Cell::ZERO; argc as usize];
                    for a in args.iter_mut().rev() {
                        *a = pop!();
                    }
                    outcome.signals.push(SignalOut { lib, event, args });
                }
                Op::RetV => {
                    let v = pop!();
                    outcome.returned = Some(ReturnValue::Scalar(v));
                    break;
                }
                Op::RetA => {
                    let slot = operands[0] as usize;
                    let Some(arr) = self.arrays.get(slot) else {
                        fault!(VmError::BadSlot(slot as u8));
                    };
                    outcome.returned =
                        Some(ReturnValue::Array(self.array_types[slot], arr.clone()));
                    break;
                }
                Op::Ret => break,
                Op::IncG => {
                    let slot = operands[0] as usize;
                    if slot >= self.scalars.len() {
                        fault!(VmError::BadSlot(slot as u8));
                    }
                    let old = self.scalars[slot];
                    push!(old);
                    self.scalars[slot] = apply_width(
                        self.scalar_types[slot],
                        Cell::from_i32(old.as_i32().wrapping_add(1)),
                    );
                }
                Op::Halt => fault!(VmError::BadOpcode(0xff)),
            }
            pc = next_pc;
        }
        outcome
    }
}

/// Emulates the declared storage width on store, like a C assignment to a
/// narrow integer type.
fn apply_width(ty: Type, v: Cell) -> Cell {
    let x = v.as_i32();
    let out = match ty {
        Type::U8 | Type::Char => x & 0xff,
        Type::I8 => x as u8 as i8 as i32,
        Type::U16 => x & 0xffff,
        Type::I16 => x as u16 as i16 as i32,
        Type::Bool => (x != 0) as i32,
        Type::U32 | Type::I32 | Type::Float => return v,
    };
    Cell::from_i32(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_dsl::events::{ids, libs};
    use upnp_dsl::{compile_source_with, OptLevel};

    // These tests observe the VM through channels the optimiser is free
    // to change — direct global-slot introspection (dead globals get
    // eliminated) and per-instruction costs — so they compile without
    // optimisation to pin the literal code shape. Optimised-vs-reference
    // equivalence is `tests/differential.rs`'s job.
    fn instance(src: &str) -> DriverInstance {
        DriverInstance::new(compile_source_with(src, 1, OptLevel::None).expect("compile"))
    }

    const PROLOGUE: &str = "event destroy():\n    return;\n";

    #[test]
    fn init_stores_globals() {
        let mut d = instance(&format!(
            "uint8_t a;\nuint16_t b;\nevent init():\n    a = 300;\n    b = 70000;\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::INIT, &[]);
        assert_eq!(out.error, None);
        // u8 truncates 300 → 44; u16 truncates 70000 → 4464.
        assert_eq!(d.scalar(0).unwrap().as_i32(), 300 & 0xff);
        assert_eq!(d.scalar(1).unwrap().as_i32(), 70000 & 0xffff);
    }

    #[test]
    fn signed_widths_sign_extend() {
        let mut d = instance(&format!(
            "int8_t a;\nevent init():\n    a = 200;\n{PROLOGUE}"
        ));
        d.run_handler(ids::INIT, &[]);
        assert_eq!(d.scalar(0).unwrap().as_i32(), -56);
    }

    #[test]
    fn float_pipeline_computes_temperature() {
        // The TMP36 conversion at raw=512: V=1.65156, T=115.156 °C.
        let mut d = instance(&format!(
            "float t;\nuint16_t raw;\nevent sampleDone(uint16_t r):\n    raw = r;\n    t = ((raw * 3.3) / 1023.0 - 0.5) * 100.0;\n    return t;\nevent init():\n    return;\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::SAMPLE_DONE, &[Cell::from_i32(512)]);
        assert_eq!(out.error, None);
        let Some(ReturnValue::Scalar(v)) = out.returned else {
            panic!("expected scalar return");
        };
        assert!((v.as_f32() - 115.156).abs() < 0.01, "{}", v.as_f32());
    }

    #[test]
    fn signals_are_collected_in_order() {
        let mut d = instance(&format!(
            "import uart;\nevent init():\n    signal uart.read();\n    signal this.done();\nevent done():\n    return;\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::INIT, &[]);
        assert_eq!(out.signals.len(), 2);
        assert_eq!(out.signals[0].lib, libs::UART);
        assert_eq!(out.signals[1].lib, libs::THIS);
        assert!(out.signals[1].event >= 128);
    }

    #[test]
    fn signal_args_in_declaration_order() {
        let mut d = instance(&format!(
            "import uart;\nevent init():\n    signal uart.init(9600, 0, 1, 8);\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::INIT, &[]);
        let args: Vec<i32> = out.signals[0].args.iter().map(|c| c.as_i32()).collect();
        assert_eq!(args, vec![9600, 0, 1, 8]);
    }

    #[test]
    fn listing1_newdata_collects_card() {
        let mut d = instance(upnp_dsl::drivers::ID20LA);
        d.run_handler(ids::INIT, &[]);
        d.run_handler(ids::READ, &[]);
        // Feed the 16-byte frame; control chars must be filtered.
        let frame = b"\x02DEADBEEF01XY\r\n\x03";
        let mut custom_signal = None;
        for &c in frame {
            let out = d.run_handler(ids::NEWDATA, &[Cell::from_i32(c as i32)]);
            assert_eq!(out.error, None);
            for s in out.signals {
                if s.lib == libs::THIS {
                    custom_signal = Some(s.event);
                }
            }
        }
        // After 12 payload chars the driver signals readDone.
        let read_done = custom_signal.expect("readDone signalled");
        let out = d.run_handler(read_done, &[]);
        let Some(ReturnValue::Array(ty, cells)) = out.returned else {
            panic!("expected array return");
        };
        assert_eq!(ty, Type::U8);
        let bytes: Vec<u8> = cells.iter().map(|c| c.as_i32() as u8).collect();
        assert_eq!(&bytes, b"DEADBEEF01XY");
    }

    #[test]
    fn out_of_range_store_faults() {
        let mut d = instance(&format!(
            "uint8_t a[2];\nuint8_t i;\nevent init():\n    i = 5;\n    a[i] = 1;\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::INIT, &[]);
        assert_eq!(out.error, Some(VmError::OutOfRange));
    }

    #[test]
    fn division_by_zero_faults() {
        let mut d = instance(&format!(
            "int32_t x, y;\nevent init():\n    x = 10 / y;\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::INIT, &[]);
        assert_eq!(out.error, Some(VmError::DivideByZero));
    }

    #[test]
    fn runaway_loop_exhausts_gas() {
        let mut d = instance(&format!(
            "uint8_t x;\nevent init():\n    while 1 == 1:\n        x = 1;\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::INIT, &[]);
        assert_eq!(out.error, Some(VmError::GasExhausted));
        assert!(out.instructions >= GAS_LIMIT);
    }

    #[test]
    fn missing_handler_reports_no_handler() {
        let mut d = instance(&format!("event init():\n    return;\n{PROLOGUE}"));
        let out = d.run_handler(ids::STREAM, &[]);
        assert_eq!(out.error, Some(VmError::NoHandler(ids::STREAM)));
        assert!(d.has_handler(ids::INIT));
        assert!(!d.has_handler(ids::STREAM));
    }

    #[test]
    fn cost_accumulates_per_instruction() {
        let mut d = instance(&format!(
            "uint8_t x;\nevent init():\n    x = 1;\n{PROLOGUE}"
        ));
        let out = d.run_handler(ids::INIT, &[]);
        // PUSH8 + STG + RET = 3 instructions, each costing > dispatch.
        assert_eq!(out.instructions, 3);
        assert!(out.cost.cycles > 3 * crate::cost::DISPATCH_CYCLES);
    }

    #[test]
    fn bmp180_compensation_matches_reference_model() {
        use upnp_bus::peripherals::Calibration;
        // Feed the datasheet example values through the DSL driver's
        // compensate handler and compare with the datasheet worked example.
        let mut d = instance(upnp_dsl::drivers::BMP180);
        d.run_handler(ids::INIT, &[]);

        // Write calibration EEPROM bytes into cal[] via i2cdata events
        // (state is 1 right after init).
        let cal = Calibration::DATASHEET_EXAMPLE.to_eeprom();
        for (i, &b) in cal.iter().enumerate() {
            let out = d.run_handler(
                ids::I2C_DATA,
                &[Cell::from_i32(b as i32), Cell::from_i32(i as i32)],
            );
            assert_eq!(out.error, None);
        }
        // i2cDone in state 1 → parseCalibration.
        let out = d.run_handler(ids::I2C_DONE, &[]);
        let parse_ev = out.signals[0].event;
        let out = d.run_handler(parse_ev, &[]);
        assert_eq!(out.error, None);

        // Inject UT/UP via the driver's own buffers: run read(), then
        // pretend the I²C completions delivered the datasheet bytes.
        d.run_handler(ids::READ, &[]);
        // state 2 → timerFired → state 3 read UT.
        d.run_handler(ids::TIMER_FIRED, &[]);
        let ut: i64 = 27898;
        for (i, b) in [(ut >> 8) as u8, (ut & 0xff) as u8].iter().enumerate() {
            d.run_handler(
                ids::I2C_DATA,
                &[Cell::from_i32(*b as i32), Cell::from_i32(i as i32)],
            );
        }
        d.run_handler(ids::I2C_DONE, &[]); // state 3 → cmd pressure, timer
        d.run_handler(ids::TIMER_FIRED, &[]); // state 4 → read UP
        let up: i64 = 23843;
        let raw24 = (up as u32) << 8;
        for (i, b) in [
            (raw24 >> 16) as u8,
            (raw24 >> 8) as u8,
            (raw24 & 0xff) as u8,
        ]
        .iter()
        .enumerate()
        {
            d.run_handler(
                ids::I2C_DATA,
                &[Cell::from_i32(*b as i32), Cell::from_i32(i as i32)],
            );
        }
        let out = d.run_handler(ids::I2C_DONE, &[]);
        // i2cDone in state 5 signals this.compensate.
        let comp_ev = out
            .signals
            .iter()
            .find(|s| s.lib == libs::THIS)
            .expect("compensate signalled")
            .event;
        let out = d.run_handler(comp_ev, &[]);
        assert_eq!(out.error, None);
        let Some(ReturnValue::Scalar(p)) = out.returned else {
            panic!("expected pressure return");
        };
        // Datasheet worked example: 69964 Pa.
        assert_eq!(p.as_i32(), 69_964);
    }
}
