//! VM cells: 32-bit values holding integers or IEEE-754 floats.
//!
//! The stack-based VM keeps every value in a single 32-bit cell (§4.2:
//! "a simple and memory-efficient approach"). Integer opcodes treat the
//! cell as `i32`; float opcodes reinterpret the same bits as `f32` — the
//! compiler's static typing guarantees the right opcode family is used.

/// One 32-bit VM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell(pub i32);

impl Cell {
    /// The zero cell.
    pub const ZERO: Cell = Cell(0);

    /// Creates a cell from an integer.
    pub fn from_i32(v: i32) -> Cell {
        Cell(v)
    }

    /// Creates a cell from a float (bit reinterpretation).
    pub fn from_f32(v: f32) -> Cell {
        Cell(v.to_bits() as i32)
    }

    /// The cell as an integer.
    pub fn as_i32(self) -> i32 {
        self.0
    }

    /// The cell as a float (bit reinterpretation).
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }

    /// True if the cell is non-zero (the VM's truthiness).
    pub fn truthy(self) -> bool {
        self.0 != 0
    }
}

impl From<i32> for Cell {
    fn from(v: i32) -> Cell {
        Cell(v)
    }
}

impl From<f32> for Cell {
    fn from(v: f32) -> Cell {
        Cell::from_f32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrip() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 42] {
            assert_eq!(Cell::from_i32(v).as_i32(), v);
        }
    }

    #[test]
    fn float_roundtrip_preserves_bits() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::INFINITY, f32::MIN_POSITIVE] {
            assert_eq!(Cell::from_f32(v).as_f32().to_bits(), v.to_bits());
        }
        // NaN keeps its payload through the cell.
        let nan = f32::from_bits(0x7fc0_1234);
        assert_eq!(Cell::from_f32(nan).as_f32().to_bits(), 0x7fc0_1234);
    }

    #[test]
    fn truthiness() {
        assert!(!Cell::ZERO.truthy());
        assert!(Cell::from_i32(1).truthy());
        assert!(Cell::from_i32(-7).truthy());
        // Note: float 0.0 has all-zero bits, so it is falsy too.
        assert!(!Cell::from_f32(0.0).truthy());
    }
}
