//! The assembled execution environment on one Thing (paper Figure 8,
//! minus the network stack, which `upnp-core` adds on top).
//!
//! The runtime owns the event router, driver manager, native libraries and
//! hardware context, and advances a deterministic virtual clock. Its
//! dispatch loop models the single-threaded MCU: one event at a time, each
//! handler run to completion, bus completions delivered from the deferred
//! queue only when the router drains — then time jumps to the next
//! completion.

use upnp_dsl::events::{errors, ids, libs};
use upnp_dsl::image::DriverImage;
use upnp_sim::{AvrCostModel, CpuCost, EnergyMeter, Scheduler, SimDuration, SimTime};

use crate::manager::{DriverManager, InstallError, SlotId};
use crate::natives::{DeferredAction, HwContext, NativeLibs};
use crate::router::{Endpoint, EventRouter, RoutedEvent};
use crate::value::Cell;
use crate::vm::{ReturnValue, VmError};

/// A token identifying an in-flight remote operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpToken(pub u64);

/// The kind of remote operation pending on a driver (§5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingKind {
    /// `read`: expects a value back.
    Read,
    /// `write`: expects an acknowledgement.
    Write,
    /// `stream`: expects periodic values (each `return` produces one).
    Stream,
}

/// A resolved operation, ready for the network layer to answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedOp {
    /// The token from [`Runtime::request`].
    pub token: OpToken,
    /// The driver slot that served it.
    pub slot: SlotId,
    /// What kind of operation it was.
    pub kind: PendingKind,
    /// The returned value (`None` for acknowledgements or missing
    /// handlers).
    pub value: Option<ReturnValue>,
    /// Virtual time of completion.
    pub at: SimTime,
}

#[derive(Debug)]
struct PendingOp {
    token: OpToken,
    slot: SlotId,
    kind: PendingKind,
}

/// The per-Thing execution environment.
pub struct Runtime {
    /// The two-queue event router.
    pub router: EventRouter,
    /// Installed drivers.
    pub manager: DriverManager,
    /// Native library state.
    pub natives: NativeLibs,
    /// Buses, peripherals and the physical environment.
    pub hw: HwContext,
    sched: Scheduler<DeferredAction>,
    now: SimTime,
    avr: AvrCostModel,
    cpu_meter: EnergyMeter,
    bus_meter: EnergyMeter,
    pending: Vec<PendingOp>,
    completed: Vec<CompletedOp>,
    next_token: u64,
    events_dispatched: u64,
    instructions_retired: u64,
}

/// Blueprint for per-Thing runtimes.
///
/// The CPU cost model and hardware defaults are fleet-invariant;
/// [`RuntimeTemplate::instantiate`] wires a fresh per-Thing context
/// (buses, router, meters) around them. One template serves an entire
/// fleet build — only the noise seed varies per Thing.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeTemplate {
    avr: AvrCostModel,
}

impl Default for RuntimeTemplate {
    fn default() -> Self {
        RuntimeTemplate {
            avr: AvrCostModel::atmega128rfa1(),
        }
    }
}

impl RuntimeTemplate {
    /// Stamps out one runtime seeded with `seed`.
    pub fn instantiate(&self, seed: u64) -> Runtime {
        Runtime {
            router: EventRouter::new(),
            manager: DriverManager::new(),
            natives: NativeLibs::new(),
            hw: HwContext::new(seed),
            sched: Scheduler::new(),
            now: SimTime::ZERO,
            avr: self.avr,
            cpu_meter: EnergyMeter::new("mcu"),
            bus_meter: EnergyMeter::new("bus"),
            pending: Vec::new(),
            completed: Vec::new(),
            next_token: 1,
            events_dispatched: 0,
            instructions_retired: 0,
        }
    }
}

impl Runtime {
    /// Creates a runtime with default hardware and the given noise seed.
    pub fn new(seed: u64) -> Self {
        RuntimeTemplate::default().instantiate(seed)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `at` (idle time costs nothing: the MCU
    /// sleeps).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "runtime clock cannot go backwards");
        self.now = at;
    }

    /// Charges an externally-incurred CPU cost (e.g. network-stack packet
    /// processing) against the clock and energy meter.
    pub fn charge(&mut self, cost: CpuCost) {
        self.charge_cpu(cost);
    }

    /// Cumulative MCU energy, joules.
    pub fn cpu_energy_j(&self) -> f64 {
        self.cpu_meter.total_j()
    }

    /// Cumulative bus/peripheral-communication energy, joules.
    pub fn bus_energy_j(&self) -> f64 {
        self.bus_meter.total_j()
    }

    /// Lifetime counters: `(events dispatched, instructions retired)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.events_dispatched, self.instructions_retired)
    }

    /// Installs a driver for the peripheral on `channel` and fires its
    /// `init` event (§4.1: "an init event is automatically fired by the
    /// µPnP runtime when a new peripheral is plugged in and its
    /// corresponding driver is installed").
    ///
    /// # Errors
    ///
    /// See [`DriverManager::install`].
    pub fn install_driver(
        &mut self,
        image: DriverImage,
        channel: u8,
    ) -> Result<SlotId, InstallError> {
        let slot = self.manager.install(image, channel)?;
        self.router.post(RoutedEvent {
            dst: Endpoint::Driver(slot),
            event: ids::INIT,
            args: Vec::new(),
        });
        Ok(slot)
    }

    /// Fires `destroy` and removes the driver in `slot`.
    pub fn remove_driver(&mut self, slot: SlotId) {
        if self.manager.get(slot).is_some() {
            self.router.post(RoutedEvent {
                dst: Endpoint::Driver(slot),
                event: ids::DESTROY,
                args: Vec::new(),
            });
            self.run_until_idle();
            self.manager.remove(slot);
            // Drop any pending operations against the removed driver.
            self.pending.retain(|p| p.slot != slot);
        }
    }

    /// Issues a remote operation (read/write/stream) against a driver.
    /// Returns the token that will appear in a [`CompletedOp`].
    pub fn request(&mut self, slot: SlotId, kind: PendingKind, args: Vec<Cell>) -> OpToken {
        let token = OpToken(self.next_token);
        self.next_token += 1;
        let event = match kind {
            PendingKind::Read => ids::READ,
            PendingKind::Write => ids::WRITE,
            PendingKind::Stream => ids::STREAM,
        };
        self.pending.push(PendingOp { token, slot, kind });
        self.router.post(RoutedEvent {
            dst: Endpoint::Driver(slot),
            event,
            args,
        });
        token
    }

    /// Posts an arbitrary event to a driver (used by the network layer and
    /// tests).
    pub fn post_event(&mut self, slot: SlotId, event: u8, args: Vec<Cell>) {
        self.router.post(RoutedEvent {
            dst: Endpoint::Driver(slot),
            event,
            args,
        });
    }

    /// Pumps the UART: moves device bytes into the FIFO and schedules
    /// per-byte `newdata` deliveries with wire timing. Call after changing
    /// the environment (e.g. presenting an RFID card).
    pub fn pump_uart(&mut self) {
        let Some(reader) = self.natives.uart_reader else {
            return;
        };
        let Some(mut device) = self.hw.uart_device.take() else {
            return;
        };
        let result = self.hw.uart.pump(device.as_mut(), &mut self.hw.env);
        self.hw.uart_device = Some(device);
        let Ok((n, tx)) = result else {
            return;
        };
        if n == 0 {
            return;
        }
        self.bus_meter.charge_j(tx.energy_j);
        let byte_time = tx.duration / n as u64;
        let mut delay = SimDuration::ZERO;
        while let Some(byte) = self.hw.uart.read_byte() {
            delay += byte_time;
            self.natives.uart_rx_gen += 1;
            self.sched.schedule_at(
                self.clamp_future(delay),
                DeferredAction::Post(RoutedEvent {
                    dst: Endpoint::Driver(reader),
                    event: ids::NEWDATA,
                    args: vec![Cell::from_i32(byte as i32)],
                }),
            );
        }
        if self.hw.uart.take_overrun() {
            self.router.post(RoutedEvent {
                dst: Endpoint::Driver(reader),
                event: errors::BUS_ERROR,
                args: Vec::new(),
            });
        }
    }

    /// Schedules a deferred action `delay` from now.
    fn defer(&mut self, delay: SimDuration, action: DeferredAction) {
        self.sched.schedule_at(self.clamp_future(delay), action);
    }

    /// Absolute schedule time for a relative delay, respecting the
    /// scheduler's internal clock (which lags `self.now`).
    fn clamp_future(&self, delay: SimDuration) -> SimTime {
        let t = self.now + delay;
        if t < self.sched.now() {
            self.sched.now()
        } else {
            t
        }
    }

    /// Runs until both the router and the deferred queue are empty.
    /// Returns operations completed during this run.
    pub fn run_until_idle(&mut self) -> Vec<CompletedOp> {
        loop {
            // A subscribed UART reader picks up any bytes the device has
            // ready (e.g. a card that was already in the field when
            // `uart.read` was signalled).
            self.pump_uart();
            // Drain the router first: the MCU services queued events before
            // sleeping.
            let mut route_cost = CpuCost::ZERO;
            if let Some(ev) = self.router.next(&mut route_cost) {
                self.charge_cpu(route_cost);
                self.dispatch(ev);
                continue;
            }
            // Router idle: wake at the next deferred completion.
            match self.sched.pop() {
                Some(entry) => {
                    if entry.at > self.now {
                        self.now = entry.at;
                    }
                    self.resolve_deferred(entry.event);
                }
                None => break,
            }
        }
        std::mem::take(&mut self.completed)
    }

    fn charge_cpu(&mut self, cost: CpuCost) {
        self.now += self.avr.duration(cost);
        self.cpu_meter.charge_j(self.avr.energy_j(cost));
    }

    fn resolve_deferred(&mut self, action: DeferredAction) {
        match action {
            DeferredAction::Post(ev) => self.router.post(ev),
            DeferredAction::TimerFired { slot, generation } => {
                if self.natives.timer_gen.get(&slot).copied() == Some(generation) {
                    self.router.post(RoutedEvent {
                        dst: Endpoint::Driver(slot),
                        event: ids::TIMER_FIRED,
                        args: Vec::new(),
                    });
                }
            }
            DeferredAction::UartTimeout { slot, generation } => {
                if self.natives.uart_reader == Some(slot) && self.natives.uart_rx_gen == generation
                {
                    self.router.post(RoutedEvent {
                        dst: Endpoint::Driver(slot),
                        event: errors::TIME_OUT,
                        args: Vec::new(),
                    });
                }
            }
        }
    }

    fn dispatch(&mut self, ev: RoutedEvent) {
        self.events_dispatched += 1;
        match ev.dst {
            Endpoint::Driver(slot) => self.dispatch_to_driver(slot, ev),
            Endpoint::Library(_) | Endpoint::Network => {
                // Library operations arrive via driver signals, not the
                // router; network events are consumed by upnp-core.
            }
        }
    }

    fn dispatch_to_driver(&mut self, slot: SlotId, ev: RoutedEvent) {
        let Some(driver) = self.manager.get_mut(slot) else {
            return; // Driver was removed while the event was queued.
        };
        if !driver.instance.has_handler(ev.event) {
            // Unhandled events are dropped; a pending op against a driver
            // with no matching handler resolves to "no value".
            self.resolve_pending_if_op(slot, ev.event);
            return;
        }
        let outcome = driver.instance.run_handler(ev.event, &ev.args);
        self.instructions_retired += outcome.instructions;
        self.charge_cpu(outcome.cost);

        for sig in outcome.signals {
            if sig.lib == libs::THIS {
                self.router.post(RoutedEvent {
                    dst: Endpoint::Driver(slot),
                    event: sig.event,
                    args: sig.args,
                });
            } else {
                let result = self
                    .natives
                    .handle(slot, sig.lib, sig.event, &sig.args, &mut self.hw);
                self.charge_cpu(result.cost);
                self.bus_meter.charge_j(result.bus_energy_j);
                for immediate in result.immediate {
                    self.router.post(immediate);
                }
                for (delay, action) in result.deferred {
                    self.defer(delay, action);
                }
            }
        }

        if let Some(value) = outcome.returned {
            self.resolve_pending(slot, Some(value));
        }

        if let Some(vm_error) = outcome.error {
            let error_event = map_vm_error(vm_error);
            // Do not recurse on errors raised by error handlers.
            if !(64..128).contains(&ev.event) {
                if let Some(event) = error_event {
                    self.router.post(RoutedEvent {
                        dst: Endpoint::Driver(slot),
                        event,
                        args: Vec::new(),
                    });
                }
            }
        }
    }

    /// Resolves the oldest pending op on `slot` with `value`.
    fn resolve_pending(&mut self, slot: SlotId, value: Option<ReturnValue>) {
        if let Some(idx) = self.pending.iter().position(|p| p.slot == slot) {
            let p = if self.pending[idx].kind == PendingKind::Stream {
                // Streams stay pending; each return produces one sample.
                let p = &self.pending[idx];
                CompletedOp {
                    token: p.token,
                    slot: p.slot,
                    kind: p.kind,
                    value,
                    at: self.now,
                }
            } else {
                let p = self.pending.remove(idx);
                CompletedOp {
                    token: p.token,
                    slot: p.slot,
                    kind: p.kind,
                    value,
                    at: self.now,
                }
            };
            self.completed.push(p);
        }
    }

    /// If the dispatched event was a remote op with no handler, resolve it
    /// with no value so callers are not left hanging.
    fn resolve_pending_if_op(&mut self, slot: SlotId, event: u8) {
        if matches!(event, ids::READ | ids::WRITE | ids::STREAM) {
            self.resolve_pending(slot, None);
        }
    }

    /// Cancels a pending stream (e.g. on remote stream-stop).
    pub fn cancel_pending(&mut self, token: OpToken) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.token != token);
        before != self.pending.len()
    }
}

/// Maps interpreter faults onto the paper's error-event vocabulary.
fn map_vm_error(e: VmError) -> Option<u8> {
    match e {
        VmError::OutOfRange => Some(errors::OUT_OF_RANGE),
        VmError::StackOverflow | VmError::StackUnderflow => Some(errors::STACK_OVERFLOW),
        VmError::DivideByZero => Some(errors::DIVIDE_BY_ZERO),
        VmError::GasExhausted => Some(errors::TIME_OUT),
        VmError::BadOpcode(_) | VmError::BadJump | VmError::BadSlot(_) => Some(errors::BUS_ERROR),
        VmError::NoHandler(_) => None,
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("now", &self.now)
            .field("drivers", &self.manager.installed())
            .field("router_queue", &self.router.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_bus::peripherals::{Bmp180, Id20La, Tmp36, BMP180_I2C_ADDR};
    use upnp_dsl::compile_source;
    use upnp_dsl::drivers;

    #[test]
    fn tmp36_read_roundtrip() {
        let mut rt = Runtime::new(42);
        rt.hw.env.temperature_c = 31.0;
        rt.hw.analog_sources.insert(0, Box::new(Tmp36::new()));
        let image = compile_source(drivers::TMP36, 0xad1c_be01).unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle();

        let token = rt.request(slot, PendingKind::Read, vec![]);
        let done = rt.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, token);
        let Some(ReturnValue::Scalar(v)) = done[0].value else {
            panic!("expected scalar: {:?}", done[0].value);
        };
        let temp = v.as_f32();
        assert!((temp - 31.0).abs() < 1.5, "temperature {temp}");
        // Virtual time advanced (ADC conversion + handler execution).
        assert!(rt.now() > SimTime::ZERO);
        assert!(rt.cpu_energy_j() > 0.0);
        assert!(rt.bus_energy_j() > 0.0);
    }

    #[test]
    fn rfid_card_read_via_uart() {
        let mut rt = Runtime::new(43);
        rt.hw.uart_device = Some(Box::new(Id20La::new()));
        let image = compile_source(drivers::ID20LA, 0xed3f_0ac1).unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle();

        let token = rt.request(slot, PendingKind::Read, vec![]);
        rt.run_until_idle();
        // Present a card; the runtime pumps the UART.
        rt.hw.env.present_card("0415AB09CD");
        rt.pump_uart();
        let done = rt.run_until_idle();
        assert_eq!(done.len(), 1, "one read completion");
        assert_eq!(done[0].token, token);
        let Some(ReturnValue::Array(_, cells)) = &done[0].value else {
            panic!("expected array: {:?}", done[0].value);
        };
        let text: Vec<u8> = cells.iter().map(|c| c.as_i32() as u8).collect();
        assert_eq!(&text[..10], b"0415AB09CD");
    }

    #[test]
    fn uart_timeout_fires_without_data() {
        let mut rt = Runtime::new(44);
        rt.hw.uart_device = Some(Box::new(Id20La::new()));
        let image = compile_source(drivers::ID20LA, 0xed3f_0ac1).unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle();
        rt.request(slot, PendingKind::Read, vec![]);
        // No card presented: the timeout error handler must run and clear
        // the driver's busy flag (scalar slot 1 = busy).
        rt.run_until_idle();
        let busy = rt.manager.get(slot).unwrap().instance.scalar(1).unwrap();
        assert_eq!(busy.as_i32(), 0, "timeOut handler must clear busy");
    }

    #[test]
    fn bmp180_full_pressure_read() {
        let mut rt = Runtime::new(45);
        rt.hw.env.temperature_c = 22.5;
        rt.hw.env.pressure_pa = 99_800.0;
        rt.hw
            .i2c
            .attach(BMP180_I2C_ADDR, Box::new(Bmp180::noiseless(9)));
        let image = compile_source(drivers::BMP180, 0xed3f_bda1).unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle(); // init reads the calibration EEPROM

        let token = rt.request(slot, PendingKind::Read, vec![]);
        let done = rt.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, token);
        let Some(ReturnValue::Scalar(p)) = done[0].value else {
            panic!("expected pressure, got {:?}", done[0].value);
        };
        let pa = p.as_i32();
        assert!((pa - 99_800).abs() <= 20, "pressure {pa} Pa");
        // The conversion waits (2 × 5 ms timers) must show in virtual time.
        assert!(rt.now() >= SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn remove_driver_fires_destroy() {
        let mut rt = Runtime::new(46);
        let src = "\
import uart;
event init():
    signal uart.init(9600, 0, 1, 8);
event destroy():
    signal uart.reset();
";
        let image = compile_source(src, 7).unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle();
        assert!(rt.hw.uart.in_use());
        rt.remove_driver(slot);
        assert!(!rt.hw.uart.in_use(), "destroy must reset the uart");
        assert_eq!(rt.manager.installed(), 0);
    }

    #[test]
    fn read_on_driver_without_read_handler_resolves_empty() {
        let mut rt = Runtime::new(47);
        let image = compile_source(
            "event init():\n    return;\nevent destroy():\n    return;\n",
            9,
        )
        .unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle();
        let token = rt.request(slot, PendingKind::Read, vec![]);
        let done = rt.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, token);
        assert_eq!(done[0].value, None);
    }

    #[test]
    fn divide_by_zero_routes_error_event() {
        let mut rt = Runtime::new(48);
        let src = "\
int32_t x, y, crashes;
event init():
    return;
event destroy():
    return;
event read():
    x = 10 / y;
    return x;
error divideByZero():
    crashes = crashes + 1;
";
        let image = compile_source(src, 10).unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle();
        rt.request(slot, PendingKind::Read, vec![]);
        rt.run_until_idle();
        let crashes = rt.manager.get(slot).unwrap().instance.scalar(2).unwrap();
        assert_eq!(crashes.as_i32(), 1, "divideByZero handler must run");
    }

    #[test]
    fn stream_stays_pending_and_produces_multiple_samples() {
        let mut rt = Runtime::new(49);
        rt.hw.env.temperature_c = 25.0;
        rt.hw.analog_sources.insert(0, Box::new(Tmp36::new()));
        let src = "\
import adc;
float t;
event init():
    signal adc.init();
event destroy():
    return;
event stream():
    signal adc.read();
event sampleDone(uint16_t r):
    t = ((r * 3.3) / 1023.0 - 0.5) * 100.0;
    return t;
";
        let image = compile_source(src, 11).unwrap();
        let slot = rt.install_driver(image, 0).unwrap();
        rt.run_until_idle();
        let token = rt.request(slot, PendingKind::Stream, vec![]);
        let done = rt.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, PendingKind::Stream);
        // Trigger another sample: the stream op is still pending.
        rt.post_event(slot, ids::STREAM, vec![]);
        let done = rt.run_until_idle();
        assert_eq!(done.len(), 1, "stream produces another sample");
        assert!(rt.cancel_pending(token));
        assert!(!rt.cancel_pending(token));
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let run = || {
            let mut rt = Runtime::new(50);
            rt.hw.env.temperature_c = 25.0;
            rt.hw.analog_sources.insert(0, Box::new(Tmp36::new()));
            let image = compile_source(drivers::TMP36, 1).unwrap();
            let slot = rt.install_driver(image, 0).unwrap();
            rt.run_until_idle();
            rt.request(slot, PendingKind::Read, vec![]);
            rt.run_until_idle();
            (rt.now(), rt.stats())
        };
        assert_eq!(run(), run());
    }
}
