//! The event router (paper §4.2).
//!
//! "The router implements two queues: a regular FIFO queue for event
//! processing and a priority queue for dispatching error messages. When an
//! event is placed inside a queue, control is immediately transferred back
//! to the originator." Error events (ids 64–127) always dispatch before
//! regular events.

use std::collections::VecDeque;

use upnp_sim::CpuCost;

use crate::cost::VmCostModel;
use crate::value::Cell;

/// Where an event is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// A driver slot in the driver manager.
    Driver(u8),
    /// A native library (by library id).
    Library(u8),
    /// The network stack (handled by `upnp-core`).
    Network,
}

/// An event in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedEvent {
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Event id (error ids 64–127 take the priority queue).
    pub event: u8,
    /// Payload cells.
    pub args: Vec<Cell>,
}

impl RoutedEvent {
    /// True if this event id is in the error range.
    pub fn is_error(&self) -> bool {
        (64..128).contains(&self.event)
    }
}

/// The two-queue event router.
#[derive(Debug, Default)]
pub struct EventRouter {
    fifo: VecDeque<RoutedEvent>,
    errors: VecDeque<RoutedEvent>,
    routed: u64,
    cost_model: VmCostModel,
}

impl EventRouter {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an event; errors go to the priority queue.
    pub fn post(&mut self, event: RoutedEvent) {
        if event.is_error() {
            self.errors.push_back(event);
        } else {
            self.fifo.push_back(event);
        }
    }

    /// Dequeues the next event: all pending errors first, then FIFO order.
    /// Accrues the per-event routing cost into `cost`.
    pub fn next(&mut self, cost: &mut CpuCost) -> Option<RoutedEvent> {
        let ev = self.errors.pop_front().or_else(|| self.fifo.pop_front())?;
        self.routed += 1;
        *cost += self.cost_model.route_event();
        Some(ev)
    }

    /// Number of queued events (both queues).
    pub fn len(&self) -> usize {
        self.fifo.len() + self.errors.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.errors.is_empty()
    }

    /// Total events routed since construction.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// RAM occupied by queue structures (Table 2 accounting): the embedded
    /// implementation uses two fixed 16-entry rings of 8-byte descriptors.
    pub fn ram_bytes(&self) -> usize {
        2 * 16 * 8 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_dsl::events::errors;

    fn ev(dst: Endpoint, event: u8) -> RoutedEvent {
        RoutedEvent {
            dst,
            event,
            args: Vec::new(),
        }
    }

    #[test]
    fn fifo_order_for_regular_events() {
        let mut r = EventRouter::new();
        for i in 0..5 {
            r.post(ev(Endpoint::Driver(i), i));
        }
        let mut cost = CpuCost::ZERO;
        for i in 0..5 {
            assert_eq!(r.next(&mut cost).unwrap().event, i);
        }
        assert!(r.next(&mut cost).is_none());
    }

    #[test]
    fn errors_preempt_regular_events() {
        let mut r = EventRouter::new();
        r.post(ev(Endpoint::Driver(0), 2)); // regular read
        r.post(ev(Endpoint::Driver(0), errors::TIME_OUT));
        r.post(ev(Endpoint::Driver(0), 16)); // regular newdata
        r.post(ev(Endpoint::Driver(0), errors::BUS_ERROR));
        let mut cost = CpuCost::ZERO;
        let order: Vec<u8> = std::iter::from_fn(|| r.next(&mut cost))
            .map(|e| e.event)
            .collect();
        assert_eq!(
            order,
            vec![errors::TIME_OUT, errors::BUS_ERROR, 2, 16],
            "errors first (among themselves FIFO), then regular FIFO"
        );
    }

    #[test]
    fn routing_cost_is_charged_per_event() {
        let mut r = EventRouter::new();
        r.post(ev(Endpoint::Network, 2));
        r.post(ev(Endpoint::Network, 2));
        let mut cost = CpuCost::ZERO;
        r.next(&mut cost);
        let one = cost.cycles;
        r.next(&mut cost);
        assert_eq!(cost.cycles, 2 * one, "linear scaling in events");
        assert_eq!(one, crate::cost::ROUTE_EVENT_CYCLES);
        assert_eq!(r.routed(), 2);
    }

    #[test]
    fn len_tracks_both_queues() {
        let mut r = EventRouter::new();
        assert!(r.is_empty());
        r.post(ev(Endpoint::Driver(0), 2));
        r.post(ev(Endpoint::Driver(0), errors::TIME_OUT));
        assert_eq!(r.len(), 2);
        let mut cost = CpuCost::ZERO;
        r.next(&mut cost);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn error_range_detection() {
        assert!(!ev(Endpoint::Driver(0), 0).is_error());
        assert!(!ev(Endpoint::Driver(0), 63).is_error());
        assert!(ev(Endpoint::Driver(0), 64).is_error());
        assert!(ev(Endpoint::Driver(0), 127).is_error());
        assert!(!ev(Endpoint::Driver(0), 128).is_error());
    }
}
