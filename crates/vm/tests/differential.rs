//! Differential execution: the optimiser must be VM-invisible.
//!
//! Two copies of every driver — one compiled at [`OptLevel::None`], one at
//! [`OptLevel::Full`] — replay the same event script. After every event the
//! VM-observable outcome (signals in order, return value, fault) must be
//! identical. Costs and instruction counts are *expected* to differ: that
//! is the optimiser doing its job.
//!
//! Two layers of evidence:
//!
//! * the five shipped drivers replayed through realistic scripts (the
//!   ID-20LA 16-byte card frame, the BMP180 datasheet measurement
//!   sequence, ADC sample sweeps, SPI frames, error events);
//! * property tests over randomly generated well-typed programs with
//!   arithmetic, branches, bounded loops and division.

use std::collections::VecDeque;

use proptest::prelude::*;
use upnp_dsl::events::{errors, ids, libs};
use upnp_dsl::{compile_source_with, drivers, OptLevel};
use upnp_vm::value::Cell;
use upnp_vm::vm::DriverInstance;

/// One scripted event: `(event id, arguments)`.
type Event = (u8, Vec<Cell>);

fn cells(args: &[i32]) -> Vec<Cell> {
    args.iter().map(|&a| Cell::from_i32(a)).collect()
}

/// Replays `script` against `src` compiled at both optimisation levels
/// and asserts the observable outcome of every dispatch is identical.
///
/// Signals to `this` are pumped back into both instances (FIFO, like the
/// event router), so driver-internal event chains — `readDone`,
/// `parseCalibration`, `compensate` — are covered too.
fn assert_equivalent(name: &str, src: &str, script: &[Event]) {
    let unopt = compile_source_with(src, 1, OptLevel::None)
        .unwrap_or_else(|e| panic!("{name}: unoptimised compile failed: {e}"));
    let full = compile_source_with(src, 1, OptLevel::Full)
        .unwrap_or_else(|e| panic!("{name}: optimised compile failed: {e}"));
    assert!(
        full.size_bytes() <= unopt.size_bytes(),
        "{name}: optimisation grew the image ({} -> {})",
        unopt.size_bytes(),
        full.size_bytes()
    );
    let mut a = DriverInstance::new(unopt);
    let mut b = DriverInstance::new(full);
    let mut queue: VecDeque<Event> = script.iter().cloned().collect();
    let mut step = 0usize;
    while let Some((event, args)) = queue.pop_front() {
        if !a.has_handler(event) {
            // Scripts probe error events some drivers do not declare.
            assert!(!b.has_handler(event), "{name}: handler sets diverge");
            continue;
        }
        let oa = a.run_handler(event, &args);
        let ob = b.run_handler(event, &args);
        assert_eq!(
            oa.signals, ob.signals,
            "{name} step {step} (event {event}): signals diverge"
        );
        assert_eq!(
            oa.returned, ob.returned,
            "{name} step {step} (event {event}): return values diverge"
        );
        assert_eq!(
            oa.error, ob.error,
            "{name} step {step} (event {event}): faults diverge"
        );
        for s in &oa.signals {
            if s.lib == libs::THIS {
                queue.push_back((s.event, s.args.clone()));
            }
        }
        step += 1;
    }
}

#[test]
fn tmp36_replays_identically() {
    let mut script: Vec<Event> = vec![(ids::INIT, vec![]), (ids::READ, vec![])];
    for raw in [0, 155, 512, 1023, 65535] {
        script.push((ids::SAMPLE_DONE, cells(&[raw])));
    }
    script.push((ids::STREAM, vec![]));
    script.push((ids::SAMPLE_DONE, cells(&[700])));
    script.push((ids::DESTROY, vec![]));
    assert_equivalent("tmp36", drivers::TMP36, &script);
}

#[test]
fn hih4030_replays_identically() {
    let mut script: Vec<Event> = vec![(ids::INIT, vec![])];
    // Sweep the rail: below 0 % RH, mid-range, and clamped above 100 %.
    for raw in [0, 49, 300, 512, 777, 1023] {
        script.push((ids::READ, vec![]));
        script.push((ids::SAMPLE_DONE, cells(&[raw])));
    }
    script.push((errors::TIME_OUT, vec![]));
    script.push((ids::DESTROY, vec![]));
    assert_equivalent("hih4030", drivers::HIH4030, &script);
}

#[test]
fn id20la_replays_identically() {
    // The reader's 16-byte card frame: STX, 10 ASCII data chars, 2
    // checksum chars, CR, LF, ETX (paper Listing 1).
    let frame = b"\x024500B9A3F1D2\x0d\x0a\x03";
    let mut script: Vec<Event> = vec![(ids::INIT, vec![]), (ids::READ, vec![])];
    for &byte in frame {
        script.push((ids::NEWDATA, cells(&[byte as i32])));
    }
    script.push((errors::TIME_OUT, vec![]));
    script.push((errors::UART_IN_USE, vec![]));
    script.push((errors::INVALID_CONFIGURATION, vec![]));
    script.push((ids::STREAM, vec![]));
    for &byte in frame {
        script.push((ids::NEWDATA, cells(&[byte as i32])));
    }
    script.push((ids::DESTROY, vec![]));
    assert_equivalent("id20la", drivers::ID20LA, &script);
}

#[test]
fn bmp180_replays_identically() {
    // The Bosch datasheet's worked example: calibration constants,
    // UT = 27898, UP = 23843 at oss = 0.
    let cal: [u8; 22] = [
        0x01, 0x98, // AC1 = 408
        0xff, 0xb8, // AC2 = -72
        0xc7, 0xd1, // AC3 = -14383
        0x7f, 0xe5, // AC4 = 32741
        0x7f, 0xf5, // AC5 = 32757
        0x5a, 0x71, // AC6 = 23153
        0x18, 0x2e, // B1 = 6190
        0x00, 0x04, // B2 = 4
        0x80, 0x00, // MB = -32768
        0xdd, 0xf9, // MC = -8711
        0x0b, 0x34, // MD = 2868
    ];
    let mut script: Vec<Event> = vec![(ids::INIT, vec![])];
    for (i, &b) in cal.iter().enumerate() {
        script.push((ids::I2C_DATA, cells(&[b as i32, i as i32])));
    }
    script.push((ids::I2C_DONE, vec![])); // -> this.parseCalibration
    script.push((ids::READ, vec![]));
    script.push((ids::TIMER_FIRED, vec![])); // temperature conversion done
    script.push((ids::I2C_DATA, cells(&[0x6c, 0]))); // UT = 0x6cfa
    script.push((ids::I2C_DATA, cells(&[0xfa, 1])));
    script.push((ids::I2C_DONE, vec![])); // start pressure conversion
    script.push((ids::TIMER_FIRED, vec![])); // pressure conversion done
    script.push((ids::I2C_DATA, cells(&[0x5d, 0]))); // UP register 0x5d2300,
    script.push((ids::I2C_DATA, cells(&[0x23, 1]))); // >> 8 = 23843
    script.push((ids::I2C_DATA, cells(&[0x00, 2])));
    script.push((ids::I2C_DONE, vec![])); // -> this.compensate, returns p
    script.push((errors::BUS_ERROR, vec![]));
    script.push((errors::TIME_OUT, vec![]));
    script.push((errors::DIVIDE_BY_ZERO, vec![]));
    script.push((ids::DESTROY, vec![]));
    assert_equivalent("bmp180", drivers::BMP180, &script);
}

#[test]
fn max6675_replays_identically() {
    let mut script: Vec<Event> = vec![(ids::INIT, vec![]), (ids::READ, vec![])];
    script.push((ids::SPI_DATA, cells(&[0x03, 0])));
    script.push((ids::SPI_DATA, cells(&[0x20, 1])));
    script.push((ids::SPI_DONE, vec![])); // returns (0x0320 >> 3) * 0.25 degC
    script.push((ids::STREAM, vec![]));
    script.push((ids::SPI_DATA, cells(&[0xff, 0])));
    script.push((ids::SPI_DATA, cells(&[0xff, 1])));
    script.push((ids::SPI_DONE, vec![]));
    script.push((errors::BUS_ERROR, vec![]));
    script.push((ids::DESTROY, vec![]));
    assert_equivalent("max6675", drivers::MAX6675, &script);
}

#[test]
fn every_shipped_driver_is_covered() {
    // The scripts above are hand-written per driver; make sure a sixth
    // shipped driver cannot slip in without a differential script.
    assert_eq!(
        drivers::ALL.len(),
        5,
        "add a replay script for the new driver"
    );
}

// ---------------------------------------------------------------------
// Random well-typed programs.
// ---------------------------------------------------------------------

const OPS: [&str; 9] = ["+", "-", "*", "/", "%", "<<", ">>", "&", "|"];
const CMPS: [&str; 6] = ["<", "<=", "==", "!=", ">", ">="];

/// A random integer expression over globals `g0..g3`, small constants and
/// (inside `write`) the parameter `x`. Division and remainder are
/// included on purpose: a zero divisor must trap identically at both
/// optimisation levels.
fn int_expr(depth: u32, allow_x: bool) -> BoxedStrategy<String> {
    let mut arms: Vec<BoxedStrategy<String>> = vec![
        (-100i32..100).prop_map(|c| c.to_string()).boxed(),
        (0usize..4).prop_map(|g| format!("g{g}")).boxed(),
    ];
    if allow_x {
        arms.push(Just("x".to_string()).boxed());
    }
    if depth > 0 {
        // Two node arms against two-or-three leaves keeps the expected
        // tree size small while still nesting a few levels deep.
        for _ in 0..2 {
            arms.push(
                (
                    int_expr(depth - 1, allow_x),
                    0usize..OPS.len(),
                    int_expr(depth - 1, allow_x),
                )
                    .prop_map(|(a, i, b)| format!("({a} {} {b})", OPS[i]))
                    .boxed(),
            );
        }
    }
    Union::new(arms).boxed()
}

fn cond_expr(allow_x: bool) -> BoxedStrategy<String> {
    (
        int_expr(1, allow_x),
        0usize..CMPS.len(),
        int_expr(1, allow_x),
    )
        .prop_map(|(a, i, b)| format!("{a} {} {b}", CMPS[i]))
        .boxed()
}

/// A random statement, rendered as source lines at handler indentation.
/// Loops use the dedicated counter `i`, which no generated statement
/// assigns, so every loop terminates in at most 8 iterations.
fn stmt(allow_x: bool) -> BoxedStrategy<Vec<String>> {
    let assign = ((0usize..4), int_expr(3, allow_x))
        .prop_map(|(g, e)| vec![format!("    g{g} = {e};")])
        .boxed();
    let assign2 = ((0usize..4), int_expr(3, allow_x))
        .prop_map(|(g, e)| vec![format!("    g{g} = {e};")])
        .boxed();
    let alt = prop_oneof![
        Just(None),
        ((0usize..4), int_expr(2, allow_x)).prop_map(Some),
    ];
    let branch = (cond_expr(allow_x), 0usize..4, int_expr(2, allow_x), alt)
        .prop_map(|(c, g, e, alt)| {
            let mut lines = vec![format!("    if {c}:"), format!("        g{g} = {e};")];
            if let Some((g2, e2)) = alt {
                lines.push("    else:".to_string());
                lines.push(format!("        g{g2} = {e2};"));
            }
            lines
        })
        .boxed();
    let bounded_loop = (
        1i32..=8,
        prop::collection::vec(((0usize..4), int_expr(2, allow_x)), 1..3),
    )
        .prop_map(|(k, body)| {
            let mut lines = vec!["    i = 0;".to_string(), format!("    while i < {k}:")];
            for (g, e) in body {
                lines.push(format!("        g{g} = {e};"));
            }
            lines.push("        i = i + 1;".to_string());
            lines
        })
        .boxed();
    Union::new(vec![assign, assign2, branch, bounded_loop]).boxed()
}

fn body(allow_x: bool) -> BoxedStrategy<Vec<String>> {
    prop::collection::vec(stmt(allow_x), 1..5)
        .prop_map(|blocks| blocks.into_iter().flatten().collect())
        .boxed()
}

/// Assembles a complete well-typed driver source. `read` returns a hash
/// of every global so all of them stay observable (and therefore live —
/// the dead-global pass must not be able to hide a divergence).
fn render_program(init: &[String], write: &[String], read: &[String]) -> String {
    let mut s = String::from("int32_t g0, g1, g2, g3, i;\n");
    s.push_str("event init():\n");
    for l in init {
        s.push_str(l);
        s.push('\n');
    }
    s.push_str("    return;\n");
    s.push_str("event destroy():\n    return;\n");
    s.push_str("event write(int32_t x):\n");
    for l in write {
        s.push_str(l);
        s.push('\n');
    }
    s.push_str("    return;\n");
    s.push_str("event read():\n");
    for l in read {
        s.push_str(l);
        s.push('\n');
    }
    s.push_str("    return ((g0 * 31 + g1) * 31 + g2) * 31 + g3;\n");
    s
}

proptest! {
    /// Any well-typed program observes identical behavior at `OptLevel::
    /// None` and `OptLevel::Full`: same return values, same faults, in
    /// the same order, across a stateful multi-event script.
    #[test]
    fn random_programs_execute_identically_at_every_opt_level(
        init in body(false),
        write in body(true),
        read in body(false),
        v1 in any::<i32>(),
        v2 in -4096i32..4096,
    ) {
        let src = render_program(&init, &write, &read);
        let script: Vec<Event> = vec![
            (ids::INIT, vec![]),
            (ids::WRITE, cells(&[v1])),
            (ids::READ, vec![]),
            (ids::WRITE, cells(&[v2])),
            (ids::READ, vec![]),
            (ids::DESTROY, vec![]),
        ];
        assert_equivalent("random program", &src, &script);
    }
}
