//! Property tests for the VM: totality on hostile bytecode (a Thing must
//! survive any over-the-air image a malicious manager could send) and
//! arithmetic conformance.

use proptest::prelude::*;
use upnp_dsl::ast::Type;
use upnp_dsl::events::ids;
use upnp_dsl::image::{BusKind, DriverImage, GlobalSlot, HandlerEntry};
use upnp_dsl::{compile_source_with, OptLevel};
use upnp_vm::value::Cell;
use upnp_vm::vm::DriverInstance;

proptest! {
    /// The interpreter never panics, whatever bytecode it is fed — faults
    /// surface as `VmError`s. (The image parser would reject undecodable
    /// opcodes; this drives the interpreter directly to also cover
    /// mid-stream corruption.)
    #[test]
    fn interpreter_is_total_on_arbitrary_code(
        code in prop::collection::vec(any::<u8>(), 1..120),
        args in prop::collection::vec(any::<i32>(), 0..3),
    ) {
        let image = DriverImage {
            device_id: 1,
            bus: BusKind::None,
            imports: vec![],
            globals: vec![
                GlobalSlot { ty: Type::U8, array_len: None },
                GlobalSlot { ty: Type::I32, array_len: Some(4) },
            ],
            handlers: vec![HandlerEntry { event_id: ids::INIT, n_params: args.len() as u8, offset: 0 }],
            code,
        };
        let mut d = DriverInstance::new(image);
        let cells: Vec<Cell> = args.iter().map(|&a| Cell::from_i32(a)).collect();
        let outcome = d.run_handler(ids::INIT, &cells);
        // Either it terminated cleanly or it faulted; both are fine — the
        // property is the absence of panics and of runaway execution.
        prop_assert!(outcome.instructions <= upnp_vm::vm::GAS_LIMIT);
    }

    /// Compiled integer arithmetic agrees with Rust's wrapping semantics.
    #[test]
    fn arithmetic_conformance(a in -10_000i32..10_000, b in -10_000i32..10_000) {
        let src = "\
int32_t a, b, sum, diff, prod;
event init():
    return;
event destroy():
    return;
event write(int32_t x):
    a = x;
event read():
    sum = a + b;
    diff = a - b;
    prod = a * b;
    return sum;
";
        let mut d = DriverInstance::new(compile_source_with(src, 1, OptLevel::None).unwrap());
        d.run_handler(ids::WRITE, &[Cell::from_i32(a)]);
        // Set b through a second write path: reuse write to set a, then
        // poke b by recompiling is overkill — use two instances instead.
        let src_b = src.replace("a = x;", "b = x;");
        let mut d2 = DriverInstance::new(compile_source_with(&src_b, 1, OptLevel::None).unwrap());
        d2.run_handler(ids::WRITE, &[Cell::from_i32(b)]);

        // Single-instance check: a set, b zero.
        let out = d.run_handler(ids::READ, &[]);
        prop_assert!(out.error.is_none());
        prop_assert_eq!(d.scalar(2).unwrap().as_i32(), a); // sum = a + 0
        prop_assert_eq!(d.scalar(3).unwrap().as_i32(), a); // diff = a - 0
        prop_assert_eq!(d.scalar(4).unwrap().as_i32(), 0); // prod = a * 0

        let out2 = d2.run_handler(ids::READ, &[]);
        prop_assert!(out2.error.is_none());
        prop_assert_eq!(d2.scalar(2).unwrap().as_i32(), b);
        prop_assert_eq!(d2.scalar(3).unwrap().as_i32(), 0i32.wrapping_sub(b));
        prop_assert_eq!(d2.scalar(4).unwrap().as_i32(), 0);
    }

    /// Narrow stores truncate exactly like C casts.
    #[test]
    fn width_truncation_matches_c(v in any::<i32>()) {
        let src = "\
uint8_t u8v;
int8_t i8v;
uint16_t u16v;
int16_t i16v;
event init():
    return;
event destroy():
    return;
event write(int32_t x):
    u8v = x;
    i8v = x;
    u16v = x;
    i16v = x;
";
        let mut d = DriverInstance::new(compile_source_with(src, 1, OptLevel::None).unwrap());
        let out = d.run_handler(ids::WRITE, &[Cell::from_i32(v)]);
        prop_assert!(out.error.is_none());
        prop_assert_eq!(d.scalar(0).unwrap().as_i32(), (v as u8) as i32);
        prop_assert_eq!(d.scalar(1).unwrap().as_i32(), (v as i8) as i32);
        prop_assert_eq!(d.scalar(2).unwrap().as_i32(), (v as u16) as i32);
        prop_assert_eq!(d.scalar(3).unwrap().as_i32(), (v as i16) as i32);
    }

    /// Shift semantics match Rust's wrapping shifts masked to 5 bits.
    #[test]
    fn shift_conformance(v in any::<i32>(), s in 0i32..64) {
        let src = "\
int32_t value, shift, left, right;
event init():
    return;
event destroy():
    return;
event write(int32_t x, int32_t n):
    value = x;
    shift = n;
    left = value << shift;
    right = value >> shift;
";
        // `write` is declared with 1 param in the ABI; use a custom event
        // instead.
        let src = src.replace("event write(int32_t x, int32_t n):", "event setboth(int32_t x, int32_t n):");
        let mut d = DriverInstance::new(compile_source_with(&src, 1, OptLevel::None).unwrap());
        let ev = d
            .image()
            .handlers
            .iter()
            .map(|h| h.event_id)
            .find(|&e| e >= 128)
            .unwrap();
        let out = d.run_handler(ev, &[Cell::from_i32(v), Cell::from_i32(s)]);
        prop_assert!(out.error.is_none());
        prop_assert_eq!(d.scalar(2).unwrap().as_i32(), v.wrapping_shl(s as u32 & 31));
        prop_assert_eq!(d.scalar(3).unwrap().as_i32(), v.wrapping_shr(s as u32 & 31));
    }

    /// Division faults exactly on zero divisors and never otherwise.
    #[test]
    fn division_faults_only_on_zero(a in any::<i32>(), b in any::<i32>()) {
        let src = "\
int32_t a, b, q;
event init():
    return;
event destroy():
    return;
event go(int32_t x, int32_t y):
    a = x;
    b = y;
    q = a / b;
";
        let mut d = DriverInstance::new(compile_source_with(src, 1, OptLevel::None).unwrap());
        let ev = d
            .image()
            .handlers
            .iter()
            .map(|h| h.event_id)
            .find(|&e| e >= 128)
            .unwrap();
        let out = d.run_handler(ev, &[Cell::from_i32(a), Cell::from_i32(b)]);
        if b == 0 {
            prop_assert_eq!(out.error, Some(upnp_vm::vm::VmError::DivideByZero));
        } else {
            prop_assert!(out.error.is_none());
            prop_assert_eq!(d.scalar(2).unwrap().as_i32(), a.wrapping_div(b));
        }
    }
}
