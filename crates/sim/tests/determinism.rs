//! Determinism regression suite: an entire simulation — RNG draws,
//! scheduler ordering, trace capture — must be a pure function of the
//! seed. Two runs with the same seed produce byte-identical event
//! traces; different seeds diverge.

use upnp_sim::{Scheduler, SimRng, SimTime, Trace};

/// Runs a randomized scheduler/trace workload and serialises the
/// resulting trace to bytes (timestamps, signal names, f64 bit patterns —
/// any nondeterminism anywhere in the pipeline changes the bytes).
fn run_workload(seed: u64) -> Vec<u8> {
    let mut rng = SimRng::seed(seed);
    let mut sched: Scheduler<u32> = Scheduler::new();
    let mut trace = Trace::new(4096);

    // Random arrival pattern, including deliberate timestamp ties so the
    // FIFO tie-break is exercised.
    for i in 0..512u32 {
        let at = rng.next_u64() % 1_000_000;
        let at = at - (at % 1_000); // coarse buckets force ties
        sched.schedule_at(SimTime::from_nanos(at), i);
    }
    // Drain; consume RNG per event so stream position couples to order.
    while let Some(entry) = sched.pop() {
        let jitter = rng.uniform(0.0, 1.0);
        let signal = if entry.event % 2 == 0 { "even" } else { "odd" };
        trace.record(entry.at, signal, entry.event as f64 + jitter);
        if rng.chance(0.125) {
            trace.record(entry.at, "marker", rng.gaussian(2.0));
        }
    }

    let mut bytes = Vec::new();
    for ev in trace.iter() {
        bytes.extend_from_slice(&ev.at.as_nanos().to_le_bytes());
        bytes.extend_from_slice(&(ev.signal.len() as u32).to_le_bytes());
        bytes.extend_from_slice(ev.signal.as_bytes());
        bytes.extend_from_slice(&ev.value.to_bits().to_le_bytes());
    }
    bytes
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
        let a = run_workload(seed);
        let b = run_workload(seed);
        assert!(!a.is_empty());
        assert_eq!(a, b, "seed {seed}: traces diverged between runs");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = run_workload(7);
    let b = run_workload(8);
    assert_ne!(a, b, "distinct seeds must not collide");
}

#[test]
fn forked_streams_are_deterministic_too() {
    let run = |seed: u64| {
        let mut parent = SimRng::seed(seed);
        let mut child_a = parent.fork(1);
        let mut child_b = parent.fork(2);
        let draws: Vec<u64> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    child_a.next_u64()
                } else {
                    child_b.next_u64()
                }
            })
            .collect();
        draws
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}
