//! Property tests for the DES kernel's ordering invariants.

use proptest::prelude::*;
use upnp_sim::{Scheduler, SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn pops_are_time_ordered(delays in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut s: Scheduler<usize> = Scheduler::new();
        for (i, &d) in delays.iter().enumerate() {
            s.schedule_at(SimTime::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(e) = s.pop() {
            prop_assert!(e.at >= last, "time went backwards");
            last = e.at;
        }
    }

    /// Events with equal timestamps pop in insertion order (determinism).
    #[test]
    fn ties_break_by_insertion(count in 1usize..100, at in 0u64..1_000) {
        let mut s: Scheduler<usize> = Scheduler::new();
        for i in 0..count {
            s.schedule_at(SimTime::from_nanos(at), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.pop().map(|e| e.event)).collect();
        let expected: Vec<usize> = (0..count).collect();
        prop_assert_eq!(order, expected);
    }

    /// The clock after draining equals the max scheduled time.
    #[test]
    fn clock_lands_on_last_event(delays in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut s: Scheduler<()> = Scheduler::new();
        let max = *delays.iter().max().unwrap();
        for &d in &delays {
            s.schedule_at(SimTime::from_nanos(d), ());
        }
        while s.pop().is_some() {}
        prop_assert_eq!(s.now(), SimTime::from_nanos(max));
    }

    /// Duration arithmetic: sum of parts equals the whole (no overflow in
    /// realistic ranges).
    #[test]
    fn duration_addition_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let d = SimDuration::from_nanos(a) + SimDuration::from_nanos(b);
        prop_assert_eq!(d.as_nanos(), a + b);
    }

    /// Converting through f64 seconds round-trips within 1 ns per second
    /// of magnitude (f64 precision bound).
    #[test]
    fn float_roundtrip_is_tight(ns in 0u64..(1u64 << 52)) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let err = back.as_nanos().abs_diff(ns);
        prop_assert!(err <= 1 + ns / 1_000_000_000, "error {err} ns");
    }
}
