//! Energy accounting: joule meters and power-state trackers.
//!
//! The paper's headline hardware result (Figure 12, §6.1) is an energy
//! integral: joules consumed over a year as a function of how often
//! peripherals are plugged and unplugged. Two primitives cover every model in
//! the reproduction:
//!
//! * [`EnergyMeter`] — an accumulator for discrete energy charges
//!   (e.g. "one identification scan cost 4.1 mJ").
//! * [`PowerTracker`] — integrates a piecewise-constant power draw over
//!   virtual time (e.g. "the USB host idles at 44.6 mW for a year").

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// An accumulating energy meter, in joules.
///
/// # Examples
///
/// ```
/// use upnp_sim::EnergyMeter;
///
/// let mut m = EnergyMeter::new("ident");
/// m.charge_mj(2.48);
/// m.charge_mj(6.756);
/// assert!((m.total_j() - 9.236e-3).abs() < 1e-12);
/// assert_eq!(m.charges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    label: &'static str,
    total_j: f64,
    charges: u64,
}

impl EnergyMeter {
    /// Creates a zeroed meter with a diagnostic label.
    pub fn new(label: &'static str) -> Self {
        EnergyMeter {
            label,
            total_j: 0.0,
            charges: 0,
        }
    }

    /// Returns the meter's label.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Adds a charge in joules.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite charges: energy only accumulates.
    pub fn charge_j(&mut self, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "invalid energy charge: {joules} J"
        );
        self.total_j += joules;
        self.charges += 1;
    }

    /// Adds a charge in millijoules.
    pub fn charge_mj(&mut self, millijoules: f64) {
        self.charge_j(millijoules * 1e-3);
    }

    /// Adds a charge in microjoules.
    pub fn charge_uj(&mut self, microjoules: f64) {
        self.charge_j(microjoules * 1e-6);
    }

    /// Adds the energy of drawing `current_a` amps at `voltage_v` volts for
    /// `dt` of virtual time (`E = V·I·t`).
    pub fn charge_draw(&mut self, voltage_v: f64, current_a: f64, dt: SimDuration) {
        self.charge_j(voltage_v * current_a * dt.as_secs_f64());
    }

    /// Total accumulated energy in joules.
    pub fn total_j(&self) -> f64 {
        self.total_j
    }

    /// Total accumulated energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_j * 1e3
    }

    /// Number of discrete charges recorded.
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// Resets the meter to zero.
    pub fn reset(&mut self) {
        self.total_j = 0.0;
        self.charges = 0;
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.6} J over {} charges",
            self.label, self.total_j, self.charges
        )
    }
}

/// A named power state with a constant draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerState {
    /// Diagnostic name ("idle", "scan", "tx", ...).
    pub name: &'static str,
    /// Power draw in watts while in this state.
    pub watts: f64,
}

impl PowerState {
    /// A convenience zero-power state (e.g. power-gated off).
    pub const OFF: PowerState = PowerState {
        name: "off",
        watts: 0.0,
    };

    /// Creates a state from a voltage and current draw.
    pub fn from_draw(name: &'static str, voltage_v: f64, current_a: f64) -> Self {
        PowerState {
            name,
            watts: voltage_v * current_a,
        }
    }
}

/// Integrates a piecewise-constant power draw over virtual time.
///
/// The tracker is told about every state transition; energy for the elapsed
/// interval is charged at the *previous* state's draw, which is exactly the
/// left-Riemann integral of a piecewise-constant power curve (no
/// approximation error).
///
/// # Examples
///
/// ```
/// use upnp_sim::{PowerState, PowerTracker, SimDuration, SimTime};
///
/// let mut t = PowerTracker::new("board", PowerState::OFF, SimTime::ZERO);
/// let on = PowerState { name: "scan", watts: 0.0231 };
/// let t1 = SimTime::ZERO + SimDuration::from_millis(100);
/// t.transition(on, t1);
/// let t2 = t1 + SimDuration::from_millis(250);
/// t.transition(PowerState::OFF, t2);
/// // 23.1 mW for 250 ms = 5.775 mJ.
/// assert!((t.meter().total_mj() - 5.775).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PowerTracker {
    state: PowerState,
    since: SimTime,
    meter: EnergyMeter,
}

impl PowerTracker {
    /// Creates a tracker starting in `initial` at time `now`.
    pub fn new(label: &'static str, initial: PowerState, now: SimTime) -> Self {
        PowerTracker {
            state: initial,
            since: now,
            meter: EnergyMeter::new(label),
        }
    }

    /// Returns the current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Accrues energy up to `now` and switches to `next`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last transition.
    pub fn transition(&mut self, next: PowerState, now: SimTime) {
        self.accrue(now);
        self.state = next;
    }

    /// Accrues energy for the current state up to `now` without switching.
    pub fn accrue(&mut self, now: SimTime) {
        let dt = now.since(self.since);
        if self.state.watts > 0.0 && !dt.is_zero() {
            self.meter.charge_j(self.state.watts * dt.as_secs_f64());
        }
        self.since = now;
    }

    /// The underlying meter (accrued up to the last transition).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Total energy including the current (un-accrued) interval up to `now`.
    pub fn total_j_at(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.since);
        self.meter.total_j() + self.state.watts * dt.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_units() {
        let mut m = EnergyMeter::new("t");
        m.charge_j(1.0);
        m.charge_mj(500.0);
        m.charge_uj(250_000.0);
        assert!((m.total_j() - 1.75).abs() < 1e-12);
        assert_eq!(m.charges(), 3);
        m.reset();
        assert_eq!(m.total_j(), 0.0);
        assert_eq!(m.charges(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid energy charge")]
    fn negative_charge_panics() {
        EnergyMeter::new("t").charge_j(-1.0);
    }

    #[test]
    fn charge_draw_matches_ohms_law() {
        // 3.3 V × 7 mA for 300 ms = 6.93 mJ (the paper's board scan draw).
        let mut m = EnergyMeter::new("board");
        m.charge_draw(3.3, 7e-3, SimDuration::from_millis(300));
        assert!((m.total_mj() - 6.93).abs() < 1e-9);
    }

    #[test]
    fn tracker_integrates_piecewise_constant_power() {
        let mut t = PowerTracker::new("x", PowerState::OFF, SimTime::ZERO);
        let lo = PowerState {
            name: "lo",
            watts: 0.010,
        };
        let hi = PowerState {
            name: "hi",
            watts: 0.100,
        };
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        t.transition(lo, t1); // off for 1 s: 0 J
        let t2 = t1 + SimDuration::from_secs(2);
        t.transition(hi, t2); // lo for 2 s: 20 mJ
        let t3 = t2 + SimDuration::from_secs(3);
        t.transition(PowerState::OFF, t3); // hi for 3 s: 300 mJ
        assert!((t.meter().total_j() - 0.320).abs() < 1e-12);
    }

    #[test]
    fn total_at_includes_open_interval() {
        let busy = PowerState {
            name: "busy",
            watts: 1.0,
        };
        let t = PowerTracker::new("x", busy, SimTime::ZERO);
        let now = SimTime::ZERO + SimDuration::from_millis(1_500);
        assert!((t.total_j_at(now) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_draw_computes_watts() {
        let s = PowerState::from_draw("scan", 3.3, 0.007);
        assert!((s.watts - 0.0231).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let mut m = EnergyMeter::new("radio");
        m.charge_j(0.5);
        assert_eq!(m.to_string(), "radio: 0.500000 J over 1 charges");
    }
}
