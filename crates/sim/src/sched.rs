//! Deterministic event scheduler.
//!
//! A classic discrete-event simulation core: a priority queue of
//! `(time, sequence, event)` entries popped in time order. The monotonically
//! increasing sequence number breaks ties in insertion order, which makes
//! runs bit-for-bit reproducible — an essential property for the paper's
//! experiments, every one of which we re-run under fixed seeds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event queued for execution at a virtual instant.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion sequence number; orders simultaneous events.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest entry wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler.
///
/// The scheduler owns the virtual clock: popping an event advances
/// [`Scheduler::now`] to the event's timestamp. Scheduling into the past is
/// a logic error and panics, as it would silently reorder causality.
///
/// # Examples
///
/// ```
/// use upnp_sim::{Scheduler, SimDuration};
///
/// let mut sched: Scheduler<&str> = Scheduler::new();
/// sched.schedule_in(SimDuration::from_millis(10), "b");
/// sched.schedule_in(SimDuration::from_millis(5), "a");
/// assert_eq!(sched.pop().unwrap().event, "a");
/// assert_eq!(sched.pop().unwrap().event, "b");
/// assert_eq!(sched.now().as_nanos(), 10_000_000);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<EventEntry<E>>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Creates an empty scheduler whose heap is pre-sized for `capacity`
    /// pending events — fleet-scale simulations queue thousands of
    /// deliveries at once, and growing the heap mid-run shows up in
    /// profiles.
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(EventEntry { at, seq, event });
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (after already-queued
    /// events with the same timestamp).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let entry = self.queue.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some(entry)
    }

    /// Returns the timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.at)
    }

    /// Advances the clock to `at` without executing anything.
    ///
    /// Useful for idle periods (e.g. fast-forwarding a one-year deployment
    /// between peripheral changes).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time or would skip over a
    /// pending event.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "advance_to into the past");
        if let Some(next) = self.peek_time() {
            assert!(
                at <= next,
                "advance_to {at} would skip a pending event at {next}"
            );
        }
        self.now = at;
    }

    /// Drains and returns all pending events in firing order, advancing the
    /// clock to the last event's timestamp.
    pub fn drain_ordered(&mut self) -> Vec<EventEntry<E>> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(SimDuration::from_millis(30), 3);
        s.schedule_in(SimDuration::from_millis(10), 1);
        s.schedule_in(SimDuration::from_millis(20), 2);
        let order: Vec<u32> = s.drain_ordered().into_iter().map(|e| e.event).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100 {
            s.schedule_in(SimDuration::from_millis(5), i);
        }
        let order: Vec<u32> = s.drain_ordered().into_iter().map(|e| e.event).collect();
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn pop_advances_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_in(SimDuration::from_micros(7), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop().unwrap();
        assert_eq!(s.now().as_nanos(), 7_000);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_in(SimDuration::from_millis(1), ());
        s.pop();
        s.schedule_at(SimTime::ZERO, ());
    }

    #[test]
    fn advance_to_is_bounded_by_next_event() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_in(SimDuration::from_millis(10), ());
        s.advance_to(SimTime::from_nanos(5_000_000));
        assert_eq!(s.now().as_nanos(), 5_000_000);
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_past_event_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_in(SimDuration::from_millis(1), ());
        s.advance_to(SimTime::from_nanos(2_000_000));
    }

    #[test]
    fn schedule_now_runs_after_equal_timestamps() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_now("first");
        s.schedule_now("second");
        assert_eq!(s.pop().unwrap().event, "first");
        assert_eq!(s.pop().unwrap().event, "second");
    }

    #[test]
    fn len_and_is_empty_track_queue() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_now(());
        assert_eq!(s.len(), 1);
        s.pop();
        assert!(s.is_empty());
        assert!(s.pop().is_none());
    }
}
