//! Seeded deterministic randomness.
//!
//! All stochastic behaviour in the reproduction — component tolerances,
//! measurement jitter, packet loss, workload arrival — flows through
//! [`SimRng`] so that a single `u64` seed pins down an entire experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer: a full-avalanche mix of a 64-bit key.
///
/// The decomposed-randomness scheme keys independent generators by
/// structured values (node ids, link endpoints, virtual timestamps);
/// this finalizer scrambles those structured keys before they seed a
/// [`SimRng`]. It lives here so every keyed stream in the workspace
/// uses the *same* avalanche — the constants are load-bearing for the
/// sharded/sequential bit-identity guarantee.
pub fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A deterministic random source for simulations.
///
/// Wraps a seeded [`StdRng`] and adds the sampling helpers the µPnP models
/// need (tolerance bands, jitter, Bernoulli loss).
///
/// # Examples
///
/// ```
/// use upnp_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from an explicit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator, e.g. one per node.
    ///
    /// The child stream is decorrelated from the parent by a fixed odd
    /// multiplier (splitmix-style), so sibling streams do not overlap in
    /// practice.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Samples uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range is empty: [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Samples a uniform integer from `[lo, hi]` inclusive.
    pub fn uniform_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.inner.gen_range(lo..=hi)
    }

    /// Samples a relative error uniformly from `[-tolerance, +tolerance]`.
    ///
    /// This models a component drawn from a bin whose datasheet guarantees
    /// `value = nominal × (1 ± tolerance)`; manufacturers bin parts, so a
    /// uniform distribution across the bin is the standard conservative
    /// model (worse than Gaussian for decode margin analysis).
    pub fn tolerance(&mut self, tolerance: f64) -> f64 {
        assert!(tolerance >= 0.0, "negative tolerance");
        if tolerance == 0.0 {
            0.0
        } else {
            self.inner.gen_range(-tolerance..=tolerance)
        }
    }

    /// Samples from a zero-mean Gaussian with the given standard deviation
    /// (Box–Muller; no external distribution crate needed).
    pub fn gaussian(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 0.0;
        }
        // Box–Muller transform on two uniforms in (0, 1].
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        sigma * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty slice");
        self.inner.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_reproducible_and_distinct() {
        let mut parent1 = SimRng::seed(99);
        let mut parent2 = SimRng::seed(99);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed(99);
        let mut d1 = parent3.fork(6);
        let mut parent4 = SimRng::seed(99);
        let mut d2 = parent4.fork(7);
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn tolerance_stays_in_band() {
        let mut rng = SimRng::seed(3);
        for _ in 0..10_000 {
            let e = rng.tolerance(0.01);
            assert!((-0.01..=0.01).contains(&e), "out of band: {e}");
        }
        assert_eq!(rng.tolerance(0.0), 0.0);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::seed(4);
        for _ in 0..10_000 {
            let v = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_is_roughly_centred() {
        let mut rng = SimRng::seed(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gaussian(1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "gaussian mean drifted: {mean}");
        assert_eq!(rng.gaussian(0.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn index_covers_range() {
        let mut rng = SimRng::seed(8);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
