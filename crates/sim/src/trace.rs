//! Bounded trace recording for waveforms and protocol timelines.
//!
//! The paper's Figures 2, 3 and 5 are oscilloscope-style waveforms (pulse
//! trains on the multivibrator output, channel-enable lines). The hardware
//! simulation records logic-level transitions into a [`Trace`]; the
//! experiment harness renders them as the same time-series the figures show.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// A single recorded sample: a labelled signal took `value` at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// Which signal ("output", "channelA EN", "trigger", ...).
    pub signal: &'static str,
    /// The signal's new value (0/1 for logic levels; arbitrary for analog).
    pub value: f64,
}

/// A bounded in-memory trace of signal transitions.
///
/// Keeps at most `capacity` events, discarding the oldest — the same
/// behaviour as a digital scope's circular capture buffer.
///
/// # Examples
///
/// ```
/// use upnp_sim::{SimTime, Trace};
///
/// let mut t = Trace::new(8);
/// t.record(SimTime::ZERO, "output", 1.0);
/// t.record(SimTime::from_nanos(500), "output", 0.0);
/// assert_eq!(t.len(), 2);
/// let pulse: Vec<_> = t.signal("output").collect();
/// assert_eq!(pulse.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        // Storage grows on first use: a fleet of 100k boards each carrying
        // an (almost always idle) trace must not pre-pay the full capture
        // window up front.
        Trace {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Records a transition; evicts the oldest event when full.
    pub fn record(&mut self, at: SimTime, signal: &'static str, value: f64) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { at, signal, value });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over all retained events in record order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Iterates over the events of one signal.
    pub fn signal<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.signal == name)
    }

    /// Extracts `(start, end)` high-pulse intervals of a logic signal.
    ///
    /// A pulse starts when the signal rises above 0.5 and ends when it falls
    /// back below. A trailing un-terminated pulse is ignored.
    pub fn pulses(&self, name: &str) -> Vec<(SimTime, SimTime)> {
        let mut out = Vec::new();
        let mut rise: Option<SimTime> = None;
        for e in self.signal(name) {
            let high = e.value > 0.5;
            match (high, rise) {
                (true, None) => rise = Some(e.at),
                (false, Some(start)) => {
                    out.push((start, e.at));
                    rise = None;
                }
                _ => {}
            }
        }
        out
    }

    /// Clears all retained events (the drop counter is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{} {} = {}", e.at, e.signal, e.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn records_and_filters_by_signal() {
        let mut tr = Trace::new(16);
        tr.record(t(0), "a", 1.0);
        tr.record(t(1), "b", 1.0);
        tr.record(t(2), "a", 0.0);
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.signal("a").count(), 2);
        assert_eq!(tr.signal("b").count(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut tr = Trace::new(2);
        tr.record(t(0), "s", 0.0);
        tr.record(t(1), "s", 1.0);
        tr.record(t(2), "s", 0.0);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 1);
        assert_eq!(tr.iter().next().unwrap().at, t(1));
    }

    #[test]
    fn pulse_extraction() {
        let mut tr = Trace::new(64);
        // Two clean pulses and one unterminated one.
        tr.record(t(0), "out", 0.0);
        tr.record(t(10), "out", 1.0);
        tr.record(t(15), "out", 0.0);
        tr.record(t(20), "out", 1.0);
        tr.record(t(28), "out", 0.0);
        tr.record(t(30), "out", 1.0);
        let pulses = tr.pulses("out");
        assert_eq!(pulses, vec![(t(10), t(15)), (t(20), t(28))]);
    }

    #[test]
    fn pulses_ignore_repeated_levels() {
        let mut tr = Trace::new(64);
        tr.record(t(0), "out", 1.0);
        tr.record(t(1), "out", 1.0); // still high
        tr.record(t(5), "out", 0.0);
        assert_eq!(tr.pulses("out"), vec![(t(0), t(5))]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Trace::new(0);
    }

    #[test]
    fn clear_retains_drop_count() {
        let mut tr = Trace::new(1);
        tr.record(t(0), "s", 0.0);
        tr.record(t(1), "s", 1.0);
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 1);
    }

    #[test]
    fn display_lists_events() {
        let mut tr = Trace::new(4);
        tr.record(t(1), "out", 1.0);
        let s = tr.to_string();
        assert!(s.contains("out = 1"));
    }
}
