//! Deterministic discrete-event simulation kernel for the µPnP reproduction.
//!
//! The paper evaluates µPnP on physical hardware: an ATMega128RFA1
//! microcontroller running Contiki 2.7 with an 802.15.4 radio. This crate
//! provides the substrate that stands in for that testbed:
//!
//! * [`time`] — a virtual clock with nanosecond resolution ([`SimTime`],
//!   [`SimDuration`]). All timings reported by the reproduction are measured
//!   in virtual time, never wall-clock time, so every experiment is exactly
//!   reproducible.
//! * [`sched`] — a binary-heap event scheduler generic over the event payload
//!   type. Ties are broken by insertion order, which keeps runs deterministic.
//! * [`rng`] — a seeded deterministic random source with helpers for sampling
//!   component tolerances and packet loss.
//! * [`energy`] — joule accounting: integrating meters and power-state
//!   trackers used by the hardware, radio and deployment models.
//! * [`cpu`] — a calibrated cost model of the ATMega128RFA1 (16 MHz AVR) that
//!   converts abstract operation costs into virtual time and energy, so the
//!   paper's millisecond-scale Tables 2/4 numbers can be compared
//!   shape-for-shape.
//! * [`trace`] — a bounded trace recorder used to dump waveforms
//!   (Figures 2, 3 and 5) and protocol timelines.

pub mod cpu;
pub mod energy;
pub mod rng;
pub mod sched;
pub mod time;
pub mod trace;

pub use cpu::{AvrCostModel, CpuCost};
pub use energy::{EnergyMeter, PowerState, PowerTracker};
pub use rng::{splitmix64, SimRng};
pub use sched::{EventEntry, Scheduler};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
