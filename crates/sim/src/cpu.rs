//! A calibrated cost model of the evaluation MCU (ATMega128RFA1).
//!
//! The paper reports absolute times measured on a 16 MHz 8-bit AVR: 39.7 µs
//! per VM instruction, 11.1 µs per operand-stack push, 77.79 µs per routed
//! event, and the millisecond-scale network operations of Table 4. Running
//! the same algorithms on a multi-GHz host produces numbers three orders of
//! magnitude smaller, so the reproduction separates *what work is done*
//! (counted in abstract AVR cycles by each component) from *what it costs*
//! (this module converts cycles to virtual time and energy).
//!
//! Calibration sources:
//!
//! * clock: 16 MHz (62.5 ns per cycle) — ATMega128RFA1 datasheet, §35.
//! * active current: 4.1 mA at 3.3 V with the radio off — datasheet "active
//!   supply current" figure at 16 MHz.
//! * per-operation cycle counts: chosen so the reproduction's VM lands on
//!   the paper's §6.2 micro-measurements; see `upnp-vm::cost` for the
//!   opcode-level table and the calibration tests.

use crate::energy::PowerState;
use crate::time::SimDuration;

/// A cost expressed in abstract MCU cycles.
///
/// Components accumulate `CpuCost`s; the [`AvrCostModel`] converts them into
/// virtual time and energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuCost {
    /// Number of MCU clock cycles.
    pub cycles: u64,
}

impl CpuCost {
    /// The zero cost.
    pub const ZERO: CpuCost = CpuCost { cycles: 0 };

    /// Creates a cost of `cycles` clock cycles.
    pub const fn cycles(cycles: u64) -> Self {
        CpuCost { cycles }
    }

    /// Adds two costs, saturating.
    pub const fn plus(self, rhs: CpuCost) -> CpuCost {
        CpuCost {
            cycles: self.cycles.saturating_add(rhs.cycles),
        }
    }

    /// Scales the cost by a count, saturating.
    pub const fn times(self, n: u64) -> CpuCost {
        CpuCost {
            cycles: self.cycles.saturating_mul(n),
        }
    }
}

impl std::ops::Add for CpuCost {
    type Output = CpuCost;

    fn add(self, rhs: CpuCost) -> CpuCost {
        self.plus(rhs)
    }
}

impl std::ops::AddAssign for CpuCost {
    fn add_assign(&mut self, rhs: CpuCost) {
        *self = self.plus(rhs);
    }
}

impl std::iter::Sum for CpuCost {
    fn sum<I: Iterator<Item = CpuCost>>(iter: I) -> CpuCost {
        iter.fold(CpuCost::ZERO, CpuCost::plus)
    }
}

/// The ATMega128RFA1 cost model: clock frequency and supply draw.
#[derive(Debug, Clone, Copy)]
pub struct AvrCostModel {
    /// MCU clock frequency in hertz.
    pub clock_hz: u64,
    /// Supply voltage in volts.
    pub supply_v: f64,
    /// Active-mode current draw in amps (radio off).
    pub active_a: f64,
}

impl Default for AvrCostModel {
    fn default() -> Self {
        Self::atmega128rfa1()
    }
}

impl AvrCostModel {
    /// The evaluation platform of the paper: 16 MHz AVR at 3.3 V drawing
    /// 4.1 mA in active mode.
    pub const fn atmega128rfa1() -> Self {
        AvrCostModel {
            clock_hz: 16_000_000,
            supply_v: 3.3,
            active_a: 4.1e-3,
        }
    }

    /// Converts a cycle cost to virtual time.
    pub fn duration(&self, cost: CpuCost) -> SimDuration {
        // Split the multiply to avoid overflow: at 16 MHz one cycle is
        // 62.5 ns, i.e. 62 ns + 1/2 ns.
        let ns = (cost.cycles as u128 * 1_000_000_000u128 / self.clock_hz as u128) as u64;
        SimDuration::from_nanos(ns)
    }

    /// Converts a cycle cost to the energy spent executing it, in joules.
    pub fn energy_j(&self, cost: CpuCost) -> f64 {
        self.supply_v * self.active_a * self.duration(cost).as_secs_f64()
    }

    /// Returns the number of whole cycles that fit in `dt`.
    pub fn cycles_in(&self, dt: SimDuration) -> CpuCost {
        CpuCost::cycles((dt.as_nanos() as u128 * self.clock_hz as u128 / 1_000_000_000u128) as u64)
    }

    /// The MCU's active power state, for use with a
    /// [`PowerTracker`](crate::energy::PowerTracker).
    pub fn active_state(&self) -> PowerState {
        PowerState::from_draw("mcu-active", self.supply_v, self.active_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_is_62_5ns() {
        let m = AvrCostModel::atmega128rfa1();
        // Two cycles are exactly 125 ns; one cycle truncates to 62 ns.
        assert_eq!(m.duration(CpuCost::cycles(2)).as_nanos(), 125);
        assert_eq!(m.duration(CpuCost::cycles(16)).as_nanos(), 1_000);
    }

    #[test]
    fn duration_roundtrips_through_cycles_in() {
        let m = AvrCostModel::atmega128rfa1();
        let c = CpuCost::cycles(1_234_560);
        assert_eq!(m.cycles_in(m.duration(c)), c);
    }

    #[test]
    fn paper_instruction_time_maps_to_expected_cycles() {
        // §6.2: 39.7 µs per instruction at 16 MHz is 635.2 cycles.
        let m = AvrCostModel::atmega128rfa1();
        let c = m.cycles_in(SimDuration::from_nanos(39_700));
        assert_eq!(c.cycles, 635);
    }

    #[test]
    fn energy_matches_v_times_i_times_t() {
        let m = AvrCostModel::atmega128rfa1();
        // 16 M cycles = 1 s at 3.3 V × 4.1 mA = 13.53 mJ.
        let e = m.energy_j(CpuCost::cycles(16_000_000));
        assert!((e - 0.01353).abs() < 1e-9);
    }

    #[test]
    fn cost_arithmetic() {
        let a = CpuCost::cycles(100) + CpuCost::cycles(50);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.times(3).cycles, 450);
        let total: CpuCost = (1..=4).map(CpuCost::cycles).sum();
        assert_eq!(total.cycles, 10);
        let mut acc = CpuCost::ZERO;
        acc += CpuCost::cycles(7);
        assert_eq!(acc.cycles, 7);
    }

    #[test]
    fn no_overflow_on_large_costs() {
        let m = AvrCostModel::atmega128rfa1();
        // A year of cycles at 16 MHz.
        let c = CpuCost::cycles(16_000_000u64 * 31_536_000);
        let d = m.duration(c);
        assert!((d.as_secs_f64() - 31_536_000.0).abs() < 1.0);
    }

    #[test]
    fn active_state_watts() {
        let s = AvrCostModel::atmega128rfa1().active_state();
        assert!((s.watts - 0.01353).abs() < 1e-9);
    }
}
