//! Virtual time: nanosecond-resolution instants and durations.
//!
//! Every subsystem of the reproduction (multivibrator pulses, UART framing,
//! radio serialization, one-year deployments) advances a virtual clock rather
//! than reading the host clock. `u64` nanoseconds cover ~584 years, which is
//! comfortably more than the paper's longest horizon (a one-year deployment,
//! Figure 12).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future, which
    /// mirrors `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulation never runs
    /// time backwards, so this indicates a scheduler bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time ran backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs saturate to zero; values beyond the
    /// representable range saturate to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by an integer count, saturating on overflow.
    pub fn saturating_mul(self, count: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(count))
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(SimDuration::from_mins(2).as_nanos(), 120_000_000_000);
    }

    #[test]
    fn float_conversions_are_consistent() {
        let d = SimDuration::from_millis(250);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
        assert!((d.as_millis_f64() - 250.0).abs() < 1e-9);
        assert!((d.as_micros_f64() - 250_000.0).abs() < 1e-6);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        assert_eq!(back, d);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        let dt = (t + SimDuration::from_millis(5)).since(t);
        assert_eq!(dt, SimDuration::from_millis(5));
        assert_eq!(t.saturating_since(t + dt), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn since_panics_when_backwards() {
        let t = SimTime::from_nanos(10);
        let _ = t.since(SimTime::from_nanos(20));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn one_year_fits() {
        let year = SimDuration::from_secs(365 * 24 * 3600);
        assert!(year < SimDuration::MAX);
        assert!((year.as_secs_f64() - 31_536_000.0).abs() < 1e-6);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
