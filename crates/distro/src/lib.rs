//! The driver-distribution tier: in-network **edge caches** for the µPnP
//! Manager's repository.
//!
//! The paper's Manager (§5.3) is a single anycast-addressed server; at
//! fleet scale it serves every driver upload of a discovery wave alone.
//! This crate supplies the missing tier: [`EdgeCache`] nodes placed at
//! DODAG-interior routers, each registered as an *additional instance* of
//! the Manager's anycast address. A Thing's (4) driver request resolves
//! to the nearest instance — usually a cache one hop up its own subtree —
//! and the cache answers with the ordinary (5) driver upload, so Things
//! are oblivious to the tier's existence.
//!
//! Three mechanisms make the tier behave under load:
//!
//! * **Bounded LRU.** Each cache holds at most `capacity` compiled
//!   driver images; the least-recently-served entry is evicted when a
//!   new image lands.
//! * **Request coalescing (singleflight).** Concurrent misses for the
//!   same device type share one upstream fetch: the first miss starts
//!   it, followers park on the in-flight entry and are all answered the
//!   instant the image arrives. A flash crowd of *n* Things behind one
//!   cache costs the origin one fetch per device type, not *n*.
//! * **Chunked origin transfer with per-chunk recovery.** The cache
//!   pulls images from the origin in
//!   [`DRIVER_CHUNK_PAYLOAD`](upnp_net::msg::DRIVER_CHUNK_PAYLOAD)-sized
//!   chunks (stop-and-wait), re-requesting
//!   a chunk whose request or reply was lost — so a lost radio frame
//!   costs one chunk retry, never the whole image. Chunks carry the
//!   repository version; a mid-fetch version change restarts the
//!   transfer, and (20) invalidations (driven by the same flows as the
//!   paper's (8) removals) evict stale images, so origin updates
//!   propagate coherently.
//!
//! Two generation stamps keep the tier exactly-once under misbehaving
//! links and crashing endpoints. On the cache side, every (19) chunk is
//! matched against the stop-and-wait cursor: a delayed or duplicated
//! frame whose `chunk` is not the expected `next` is dropped on the
//! floor, so a doubled chunk can neither double-write the buffer nor
//! skew the fetch counters, and retry timers are invalidated by the
//! per-fetch `gen` token. On the Thing side, the MCU stamps every
//! install with its own generation (bumped on crash): a (5) upload that
//! arrives while the MCU is down tears mid-flash, and on revive the
//! half-written image — stamped with a dead generation — is rejected by
//! signature verification and refetched end-to-end, never stitched
//! across the crash (see `upnp_core`'s Thing revive path).
//!
//! The cache is a pure message-in/actions-out state machine over virtual
//! time: it owns no clock and no network. The world loop feeds it
//! datagrams and timer expiries and applies the returned [`CacheAction`]s
//! — which is exactly what keeps a sharded simulation bit-identical to a
//! sequential one: a cache lives in the one shard that owns its subtree
//! and sees the same requests in the same virtual order either way.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use upnp_dsl::image::DriverImage;
use upnp_net::calib;
use upnp_net::msg::{Message, MessageBody, SeqNo};
use upnp_net::{Datagram, NodeId};
use upnp_sim::{CpuCost, SimDuration};
use upnp_trace::TraceCtx;

// The delta encoding diffs on the same 64-byte grid the chunked
// transfer protocol ships, so "chunks skipped" below means chunks the
// cache never has to re-fetch. A grid mismatch would be silent drift.
const _: () = assert!(upnp_dsl::delta::CHUNK == upnp_net::msg::DRIVER_CHUNK_PAYLOAD);

/// Cap on the chunk-retry backoff exponent: the retry timer doubles per
/// consecutive timeout up to `retry_timeout << RETRY_BACKOFF_CAP`
/// (250 ms → 8 s at the default config) — long enough to sit out a
/// 10×-latency gray link, short enough that a genuinely lost chunk is
/// still re-requested within a soak epoch.
pub const RETRY_BACKOFF_CAP: u32 = 5;

/// Tuning knobs of one edge cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum driver images held (LRU beyond this).
    pub capacity: usize,
    /// Base wait for a chunk before re-requesting it; doubles per
    /// consecutive timeout, capped at `retry_timeout <<`
    /// [`RETRY_BACKOFF_CAP`].
    pub retry_timeout: SimDuration,
    /// Chunk retries before a fetch is abandoned.
    pub max_retries: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 16,
            retry_timeout: SimDuration::from_millis(250),
            max_retries: 8,
        }
    }
}

/// Cumulative counters of one cache (all deterministic — they feed the
/// fleet scenario metrics and the differential harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered straight from the LRU.
    pub hits: u64,
    /// Requests that started an upstream fetch.
    pub misses: u64,
    /// Requests parked on an already in-flight fetch (singleflight
    /// followers).
    pub coalesced: u64,
    /// (5) driver uploads this cache sent to Things.
    pub uploads_served: u64,
    /// Images evicted by the LRU bound.
    pub evictions: u64,
    /// Images evicted by (8) removals / (20) invalidations.
    pub invalidations: u64,
    /// Fetches abandoned after exhausting chunk retries.
    pub failed_fetches: u64,
    /// Chunk re-requests (per-chunk loss recovery).
    pub chunk_retries: u64,
    /// Parked followers failed over to a direct origin fetch when their
    /// coalesced fetch was abandoned.
    pub failed_over: u64,
    /// Cached images upgraded in place by a (20) invalidation's delta
    /// patch (instead of evict + full re-fetch).
    pub delta_patched: u64,
    /// Delta patches rejected (checksum/structure/image validation) —
    /// each fell back to the plain eviction path.
    pub delta_rejected: u64,
    /// Chunks a delta patch did NOT have to ship or re-fetch: the
    /// patched image's total chunk count minus the chunks the delta
    /// carried, summed over successful patches.
    pub delta_chunks_skipped: u64,
}

/// A side effect the cache asks the world loop to perform.
#[derive(Debug)]
pub enum CacheAction {
    /// Transmit a datagram (at the reply-ready instant the world derives
    /// from [`CacheReply::process`] and [`CacheReply::send_path`]).
    Send(Datagram),
    /// Arm the per-fetch retry timer: call
    /// [`EdgeCache::on_timer`]`(peripheral, gen)` after `after`.
    ArmTimer {
        /// The fetch the timer guards.
        peripheral: u32,
        /// Staleness token: the fetch's generation when armed.
        gen: u64,
        /// Delay from the processing-done instant.
        after: SimDuration,
    },
}

/// The cache's response to one stimulus, with the two processing legs the
/// world turns into virtual time (mirroring the Manager's accounting).
#[derive(Debug, Default)]
pub struct CacheReply {
    /// Side effects, in order.
    pub actions: Vec<CacheAction>,
    /// Receive + lookup leg.
    pub process: SimDuration,
    /// UDP/6LoWPAN send-path leg (applies to every `Send`).
    pub send_path: SimDuration,
}

impl CacheReply {
    fn with_cost(cost: CpuCost) -> CacheReply {
        CacheReply {
            actions: Vec::new(),
            process: calib::duration(cost),
            send_path: SimDuration::ZERO,
        }
    }

    fn sending(mut self) -> CacheReply {
        self.send_path = calib::duration(calib::UDP_SEND_PATH);
        self
    }
}

/// One cached image.
#[derive(Debug)]
struct CacheEntry {
    version: u16,
    bytes: Vec<u8>,
    /// LRU stamp (monotonic touch counter; unique, so eviction order is
    /// deterministic regardless of map iteration order).
    stamp: u64,
}

/// An in-flight origin fetch with its parked followers.
#[derive(Debug)]
struct Fetch {
    /// Version stamped on the chunks seen so far (`None` before chunk 0
    /// arrives).
    version: Option<u16>,
    /// Total chunk count (learned from the first chunk).
    total: Option<u16>,
    /// The next chunk expected (stop-and-wait cursor).
    next: u16,
    /// Reassembly buffer.
    buf: Vec<u8>,
    /// Requests to answer on completion: `(requester, request seq,
    /// trace context)`, in arrival order. Each follower keeps its *own*
    /// context, so the upload (or failover) answering it stays causally
    /// linked to the request that parked it — not to the fetch
    /// initiator's trace.
    followers: Vec<(Ipv6Addr, SeqNo, TraceCtx)>,
    /// The server the chunks seen so far came from (`None` before the
    /// first chunk). A chunk from a *different* server at the *same*
    /// version is an origin failover: the transfer resumes from the
    /// stop-and-wait cursor instead of restarting or stalling.
    server: Option<Ipv6Addr>,
    /// Timeout count of this fetch, and the backoff level of its retry
    /// timer. Rises on every expiry; *held* (not reset) when the
    /// expected chunk arrives after a timeout, Karn-style — that
    /// arrival is ambiguous (the original reply or the retransmit), so
    /// the measured round trip cannot be trusted to shrink the timer.
    /// On a slow-but-lossless link the level therefore stops rising as
    /// soon as the timer exceeds the real round trip, and every later
    /// chunk is requested exactly once. A mid-fetch version restart is
    /// a new transfer and resets the level.
    retries: u32,
    /// Bumped on every progress step; stale timers carry an older value
    /// and are ignored.
    gen: u64,
    /// Fetch-session nonce carried by every chunk request of this fetch
    /// (retransmits included) — the origin deduplicates its
    /// fetch-session accounting by it.
    session: SeqNo,
    /// Trace context of the request that started this fetch — every
    /// chunk request (and retransmit) of the transfer is stamped with
    /// it, so the whole upstream leg hangs off the initiating miss.
    initiator: TraceCtx,
}

/// An edge node of the driver-distribution tier.
pub struct EdgeCache {
    /// This cache's network node.
    pub node: NodeId,
    /// This cache's unicast address (chunk requests originate here).
    pub address: Ipv6Addr,
    /// The origin repository's unicast address.
    pub origin: Ipv6Addr,
    config: CacheConfig,
    entries: HashMap<u32, CacheEntry>,
    inflight: HashMap<u32, Fetch>,
    /// Monotonic LRU touch counter.
    tick: u64,
    /// Monotonic fetch-generation counter (shared across fetches so a
    /// reused peripheral id can never collide with an old timer).
    fetch_gen: u64,
    /// Fetch-session nonce counter (wrapping; one per started fetch).
    session: SeqNo,
    seq: SeqNo,
    /// Cumulative counters.
    pub stats: CacheStats,
}

impl EdgeCache {
    /// Creates an empty cache on `node` fetching from `origin`.
    pub fn new(node: NodeId, address: Ipv6Addr, origin: Ipv6Addr, config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "a cache needs at least one slot");
        EdgeCache {
            node,
            address,
            origin,
            config,
            entries: HashMap::new(),
            inflight: HashMap::new(),
            tick: 0,
            fetch_gen: 0,
            session: 0,
            seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of images currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached version of a peripheral's image, if present.
    pub fn cached_version(&self, peripheral: u32) -> Option<u16> {
        self.entries.get(&peripheral).map(|e| e.version)
    }

    /// Number of fetches currently in flight.
    pub fn inflight_fetches(&self) -> usize {
        self.inflight.len()
    }

    fn next_seq(&mut self) -> SeqNo {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// The retry-timer duration at backoff level `retries`: the base
    /// timeout doubled per consecutive timeout, capped at
    /// [`RETRY_BACKOFF_CAP`] doublings. A fixed interval here is a live
    /// bug under gray links — a 10×-latency path makes the timer fire
    /// while the chunk is merely in flight, spraying duplicate
    /// `DriverChunkRequest`s on every single chunk of the transfer.
    fn retry_after(&self, retries: u32) -> SimDuration {
        self.config.retry_timeout * (1u64 << retries.min(RETRY_BACKOFF_CAP))
    }

    fn datagram(&self, dst: Ipv6Addr, msg: Message, ctx: TraceCtx) -> Datagram {
        Datagram {
            src: self.address,
            dst,
            src_port: upnp_net::addr::MCAST_PORT,
            dst_port: upnp_net::addr::MCAST_PORT,
            payload: upnp_net::msg::Payload::from(msg.encode()).with_trace(ctx),
        }
    }

    /// Attempts to upgrade a cached image in place from a (20) delta
    /// patch. Returns `true` when the entry now holds `version`; any
    /// failure (malformed wire form, base-checksum mismatch, or a
    /// patched image that does not re-validate) leaves the entry
    /// untouched so the caller can fall back to eviction.
    fn try_delta_patch(&mut self, peripheral: u32, version: u16, patch: &[u8]) -> bool {
        let Some(entry) = self.entries.get_mut(&peripheral) else {
            return false;
        };
        let delta = match upnp_dsl::ImageDelta::from_bytes(patch) {
            Ok(d) => d,
            Err(_) => {
                self.stats.delta_rejected += 1;
                return false;
            }
        };
        let patched = match delta.apply(&entry.bytes) {
            Ok(b) => b,
            Err(_) => {
                self.stats.delta_rejected += 1;
                return false;
            }
        };
        // The checksums only prove we rebuilt the origin's bytes; prove
        // the bytes are a well-formed, verifiable image before serving
        // them to motes.
        let valid = DriverImage::from_bytes(&patched)
            .ok()
            .is_some_and(|image| upnp_dsl::verify(&image).is_ok());
        if !valid {
            self.stats.delta_rejected += 1;
            return false;
        }
        self.stats.delta_chunks_skipped += (delta.total_chunks() - delta.chunks.len()) as u64;
        self.stats.delta_patched += 1;
        entry.bytes = patched;
        entry.version = version;
        true
    }

    fn upload(
        &self,
        dst: Ipv6Addr,
        seq: SeqNo,
        peripheral: u32,
        image: &[u8],
        ctx: TraceCtx,
    ) -> Datagram {
        self.datagram(
            dst,
            Message {
                seq,
                body: MessageBody::DriverUpload {
                    peripheral,
                    image: image.to_vec(),
                },
            },
            ctx,
        )
    }

    fn chunk_request(&mut self, peripheral: u32, chunk: u16) -> Datagram {
        let seq = self.next_seq();
        let (session, ctx) = self
            .inflight
            .get(&peripheral)
            .map(|f| (f.session, f.initiator))
            .expect("chunk requests belong to an in-flight fetch");
        self.datagram(
            self.origin,
            Message {
                seq,
                body: MessageBody::DriverChunkRequest {
                    peripheral,
                    session,
                    chunk,
                },
            },
            ctx,
        )
    }

    /// Touches the LRU stamp of a live entry.
    fn touch(&mut self, peripheral: u32) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&peripheral) {
            e.stamp = self.tick;
        }
    }

    /// Inserts an image, evicting the least-recently-used entry when the
    /// bound is hit. Stamps are unique, so the victim is deterministic.
    fn insert(&mut self, peripheral: u32, version: u16, bytes: Vec<u8>) {
        if !self.entries.contains_key(&peripheral) && self.entries.len() >= self.config.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&p, _)| p)
                .expect("capacity > 0 implies an entry");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        self.tick += 1;
        self.entries.insert(
            peripheral,
            CacheEntry {
                version,
                bytes,
                stamp: self.tick,
            },
        );
    }

    /// Handles a datagram delivered to this cache. The world applies the
    /// returned actions after the processing legs.
    pub fn on_datagram(&mut self, dgram: &Datagram) -> CacheReply {
        let Some(msg) = Message::decode(&dgram.payload) else {
            return CacheReply::default();
        };
        match msg.body {
            MessageBody::DriverRequest { peripheral } => {
                self.on_driver_request(dgram.src, msg.seq, peripheral, dgram.payload.trace())
            }
            MessageBody::DriverChunk {
                peripheral,
                version,
                chunk,
                total,
                data,
            } => self.on_chunk(dgram.src, peripheral, version, chunk, total, data),
            MessageBody::DriverRemoval { peripheral } => {
                // The paper's (8) removal, honoured at the tier: evict
                // and acknowledge with (9), like a Thing would.
                let removed = self.entries.remove(&peripheral).is_some();
                if removed {
                    self.stats.invalidations += 1;
                }
                let mut reply =
                    CacheReply::with_cost(calib::UDP_RECV_PATH + calib::REPO_LOOKUP).sending();
                reply.actions.push(CacheAction::Send(self.datagram(
                    dgram.src,
                    Message {
                        seq: msg.seq,
                        body: MessageBody::DriverRemovalAck {
                            peripheral,
                            removed,
                        },
                    },
                    dgram.payload.trace(),
                )));
                reply
            }
            MessageBody::DriverInvalidate {
                peripheral,
                version,
                delta,
            } => {
                // A delta patch can upgrade a strictly-older cached copy
                // in place: apply (base checksum guards against patching
                // the wrong bytes), then re-validate the result as a
                // whole image before trusting it. Any failure falls back
                // to plain eviction — a delta is an optimisation, never
                // a correctness dependency.
                if self
                    .entries
                    .get(&peripheral)
                    .is_some_and(|e| e.version < version)
                {
                    if let Some(patch) = delta.as_deref() {
                        if self.try_delta_patch(peripheral, version, patch) {
                            return CacheReply::with_cost(
                                calib::UDP_RECV_PATH + calib::REPO_LOOKUP,
                            );
                        }
                    }
                    // Evict only strictly older copies; an in-flight
                    // fetch is left alone — the origin already serves
                    // the new version, and the chunk version check
                    // restarts the transfer if it straddled the update.
                    self.entries.remove(&peripheral);
                    self.stats.invalidations += 1;
                }
                CacheReply::with_cost(calib::UDP_RECV_PATH + calib::REPO_LOOKUP)
            }
            _ => CacheReply::with_cost(calib::UDP_RECV_PATH),
        }
    }

    fn on_driver_request(
        &mut self,
        requester: Ipv6Addr,
        seq: SeqNo,
        peripheral: u32,
        ctx: TraceCtx,
    ) -> CacheReply {
        let mut cost = CpuCost::ZERO;
        cost += calib::UDP_RECV_PATH;
        cost += calib::REPO_LOOKUP;
        if self.entries.contains_key(&peripheral) {
            self.touch(peripheral);
            self.stats.hits += 1;
            self.stats.uploads_served += 1;
            cost += calib::UPLOAD_SETUP;
            let upload = self.upload(
                requester,
                seq,
                peripheral,
                &self.entries[&peripheral].bytes,
                ctx,
            );
            let mut reply = CacheReply::with_cost(cost).sending();
            reply.actions.push(CacheAction::Send(upload));
            return reply;
        }
        if let Some(fetch) = self.inflight.get_mut(&peripheral) {
            // Singleflight: park on the in-flight fetch.
            fetch.followers.push((requester, seq, ctx));
            self.stats.coalesced += 1;
            return CacheReply::with_cost(cost);
        }
        // Cold miss: start the chunked fetch.
        self.stats.misses += 1;
        self.fetch_gen += 1;
        let gen = self.fetch_gen;
        self.session = self.session.wrapping_add(1);
        self.inflight.insert(
            peripheral,
            Fetch {
                version: None,
                total: None,
                next: 0,
                buf: Vec::new(),
                followers: vec![(requester, seq, ctx)],
                server: None,
                retries: 0,
                gen,
                session: self.session,
                initiator: ctx,
            },
        );
        let req = self.chunk_request(peripheral, 0);
        let mut reply = CacheReply::with_cost(cost).sending();
        reply.actions.push(CacheAction::Send(req));
        reply.actions.push(CacheAction::ArmTimer {
            peripheral,
            gen,
            after: self.retry_after(0),
        });
        reply
    }

    fn on_chunk(
        &mut self,
        src: Ipv6Addr,
        peripheral: u32,
        version: u16,
        chunk: u16,
        total: u16,
        data: Vec<u8>,
    ) -> CacheReply {
        enum Step {
            /// No fetch / malformed / duplicate: drop on the floor (the
            /// retry timer recovers genuine losses).
            Ignore,
            /// Ask the origin for this chunk now (progress, an active
            /// restart after a mid-fetch version change, or a resume
            /// after an origin failover). `fresh_session` marks a
            /// version-change restart: the restarted transfer is a *new*
            /// fetch session, so it must carry a new nonce — reusing the
            /// stale one makes the origin's chunk-0 dedup mistake it for
            /// a retransmit of the dead session.
            Request { next: u16, fresh_session: bool },
            /// All chunks in: finalise the fetch.
            Complete,
        }
        let cost = calib::UDP_RECV_PATH;
        let step = {
            let Some(fetch) = self.inflight.get_mut(&peripheral) else {
                return CacheReply::with_cost(cost); // No fetch: stale chunk.
            };
            if total == 0 || chunk >= total {
                Step::Ignore // Malformed.
            } else {
                // Two distinct staleness causes, told apart by the
                // version stamp and the serving address:
                //  * new version (any server) — restart from chunk 0 so
                //    an image can never be stitched from two versions;
                //  * new server, same version — an anycast failover
                //    mid-transfer; the image bytes are identical, so the
                //    transfer *resumes* from the stop-and-wait cursor.
                let restarted = fetch.version.is_some_and(|v| v != version);
                let failover = !restarted && fetch.server.is_some_and(|s| s != src);
                if restarted {
                    fetch.version = None;
                    fetch.total = None;
                    fetch.next = 0;
                    fetch.buf.clear();
                    fetch.retries = 0;
                }
                fetch.server = Some(src);
                if chunk != fetch.next {
                    if restarted || failover {
                        Step::Request {
                            next: fetch.next,
                            fresh_session: restarted,
                        }
                    } else {
                        Step::Ignore // Duplicate/stale retransmit.
                    }
                } else {
                    fetch.version = Some(version);
                    fetch.total = Some(total);
                    fetch.buf.extend_from_slice(&data);
                    fetch.next += 1;
                    // `fetch.retries` is deliberately NOT reset: see its
                    // field docs (Karn-style backoff hold).
                    if fetch.next == total {
                        Step::Complete
                    } else {
                        Step::Request {
                            next: fetch.next,
                            fresh_session: restarted,
                        }
                    }
                }
            }
        };
        match step {
            Step::Ignore => CacheReply::with_cost(cost),
            Step::Request {
                next,
                fresh_session,
            } => {
                self.fetch_gen += 1;
                let gen = self.fetch_gen;
                if fresh_session {
                    self.session = self.session.wrapping_add(1);
                }
                let session = self.session;
                let fetch = self
                    .inflight
                    .get_mut(&peripheral)
                    .expect("fetch is in flight");
                fetch.gen = gen;
                if fresh_session {
                    fetch.session = session;
                }
                let level = fetch.retries;
                let req = self.chunk_request(peripheral, next);
                let mut reply = CacheReply::with_cost(cost).sending();
                reply.actions.push(CacheAction::Send(req));
                reply.actions.push(CacheAction::ArmTimer {
                    peripheral,
                    gen,
                    after: self.retry_after(level),
                });
                reply
            }
            Step::Complete => {
                // Validate, cache, answer every parked follower.
                let fetch = self.inflight.remove(&peripheral).expect("in flight");
                let bytes = fetch.buf;
                let version = fetch.version.expect("chunks carried a version");
                // Defence in depth, as the Things themselves do: a
                // corrupt reassembly must not be cached, let alone
                // fanned out.
                if DriverImage::from_bytes(&bytes)
                    .ok()
                    .filter(|img| upnp_dsl::verify(img).is_ok())
                    .is_none()
                {
                    self.stats.failed_fetches += 1;
                    return CacheReply::with_cost(cost);
                }
                self.insert(peripheral, version, bytes.clone());
                let mut reply =
                    CacheReply::with_cost(cost + calib::REPO_LOOKUP + calib::UPLOAD_SETUP)
                        .sending();
                self.stats.uploads_served += fetch.followers.len() as u64;
                for (requester, seq, ctx) in fetch.followers {
                    reply.actions.push(CacheAction::Send(
                        self.upload(requester, seq, peripheral, &bytes, ctx),
                    ));
                }
                reply
            }
        }
    }

    /// Handles a retry-timer expiry armed by a previous
    /// [`CacheAction::ArmTimer`]. Stale timers (the fetch progressed or
    /// finished since) are ignored via the generation token.
    pub fn on_timer(&mut self, peripheral: u32, gen: u64) -> CacheReply {
        let Some(fetch) = self.inflight.get_mut(&peripheral) else {
            return CacheReply::default();
        };
        if fetch.gen != gen {
            return CacheReply::default(); // Progress since armed.
        }
        if fetch.retries >= self.config.max_retries {
            // Abandon the fetch — but never strand the parked followers.
            // Each one is failed over to a direct origin fetch: the cache
            // forwards the follower's original (4) request with the
            // follower as source, so the origin's (5) upload goes
            // straight back to the Thing and the dead coalesced fetch
            // costs it one retry round, not its driver.
            let fetch = self.inflight.remove(&peripheral).expect("in flight");
            self.stats.failed_fetches += 1;
            if fetch.followers.is_empty() {
                return CacheReply::default();
            }
            self.stats.failed_over += fetch.followers.len() as u64;
            let mut reply = CacheReply::default().sending();
            for (requester, seq, ctx) in fetch.followers {
                reply.actions.push(CacheAction::Send(Datagram {
                    src: requester,
                    dst: self.origin,
                    src_port: upnp_net::addr::MCAST_PORT,
                    dst_port: upnp_net::addr::MCAST_PORT,
                    payload: upnp_net::msg::Payload::from(
                        Message {
                            seq,
                            body: MessageBody::DriverRequest { peripheral },
                        }
                        .encode(),
                    )
                    .with_trace(ctx),
                }));
            }
            return reply;
        }
        fetch.retries += 1;
        self.fetch_gen += 1;
        fetch.gen = self.fetch_gen;
        let (gen, next, level) = (fetch.gen, fetch.next, fetch.retries);
        self.stats.chunk_retries += 1;
        let req = self.chunk_request(peripheral, next);
        let mut reply = CacheReply::with_cost(calib::REPO_LOOKUP).sending();
        reply.actions.push(CacheAction::Send(req));
        reply.actions.push(CacheAction::ArmTimer {
            peripheral,
            gen,
            after: self.retry_after(level),
        });
        reply
    }

    /// An ungraceful crash: RAM is gone (cached images *and* in-flight
    /// fetches), the persistent counters survive (they model the
    /// harness's external observability, not cache RAM). Returns the
    /// followers that were parked on in-flight fetches — `(peripheral,
    /// requester, request seq, trace context)` in deterministic order
    /// (by peripheral, then arrival) — so the world can re-issue their
    /// (4) requests against the next-nearest anycast instance without
    /// severing the requests' trace lineage. `fetch_gen` keeps counting
    /// across the crash, so every pre-crash retry timer is stale by
    /// construction once the cache restarts cold.
    pub fn crash(&mut self) -> Vec<(u32, Ipv6Addr, SeqNo, TraceCtx)> {
        self.entries.clear();
        let mut fetches: Vec<(u32, Fetch)> = self.inflight.drain().collect();
        fetches.sort_by_key(|&(p, _)| p);
        fetches
            .into_iter()
            .flat_map(|(p, fetch)| {
                fetch
                    .followers
                    .into_iter()
                    .map(move |(requester, seq, ctx)| (p, requester, seq, ctx))
            })
            .collect()
    }
}

impl std::fmt::Debug for EdgeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCache")
            .field("node", &self.node)
            .field("entries", &self.entries.len())
            .field("inflight", &self.inflight.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_net::msg::DRIVER_CHUNK_PAYLOAD;

    const ORIGIN: &str = "2001:db8::1";
    const THING_A: &str = "2001:db8::a";
    const THING_B: &str = "2001:db8::b";

    fn cache() -> EdgeCache {
        EdgeCache::new(
            NodeId(1),
            "2001:db8::c".parse().unwrap(),
            ORIGIN.parse().unwrap(),
            CacheConfig::default(),
        )
    }

    fn dgram(src: &str, body: MessageBody) -> Datagram {
        Datagram {
            src: src.parse().unwrap(),
            dst: "2001:db8::c".parse().unwrap(),
            src_port: upnp_net::addr::MCAST_PORT,
            dst_port: upnp_net::addr::MCAST_PORT,
            payload: Message { seq: 9, body }.encode().into(),
        }
    }

    /// A compiled driver image the cache will accept, as chunk bodies.
    fn image_bytes() -> Vec<u8> {
        upnp_dsl::compile_source(upnp_dsl::drivers::TMP36, 0xad1c_be01)
            .expect("driver compiles")
            .to_bytes()
    }

    fn chunks_of(bytes: &[u8], version: u16) -> Vec<MessageBody> {
        let total = bytes.len().div_ceil(DRIVER_CHUNK_PAYLOAD) as u16;
        bytes
            .chunks(DRIVER_CHUNK_PAYLOAD)
            .enumerate()
            .map(|(i, c)| MessageBody::DriverChunk {
                peripheral: 0xad1c_be01,
                version,
                chunk: i as u16,
                total,
                data: c.to_vec(),
            })
            .collect()
    }

    fn sends(reply: &CacheReply) -> Vec<&Datagram> {
        reply
            .actions
            .iter()
            .filter_map(|a| match a {
                CacheAction::Send(d) => Some(d),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn miss_fetches_chunks_then_serves_all_followers() {
        let mut c = cache();
        let p = 0xad1c_be01;
        // First request: miss, chunk 0 requested from the origin.
        let r1 = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let out = sends(&r1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, ORIGIN.parse::<Ipv6Addr>().unwrap());
        // Second request while the fetch is in flight: coalesced, silent.
        let r2 = c.on_datagram(&dgram(
            THING_B,
            MessageBody::DriverRequest { peripheral: p },
        ));
        assert!(sends(&r2).is_empty());
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.coalesced, 1);

        // Feed the chunks; each one advances the stop-and-wait cursor.
        let bytes = image_bytes();
        let chunks = chunks_of(&bytes, 1);
        assert!(chunks.len() >= 2, "image must span several chunks");
        let mut uploads = Vec::new();
        for body in chunks {
            let r = c.on_datagram(&dgram(ORIGIN, body));
            for d in sends(&r) {
                if let Some(Message {
                    body: MessageBody::DriverUpload { image, .. },
                    ..
                }) = Message::decode(&d.payload)
                {
                    uploads.push((d.dst, image));
                }
            }
        }
        // Both followers answered from the one fetch, bytes intact.
        assert_eq!(uploads.len(), 2);
        assert_eq!(uploads[0].0, THING_A.parse::<Ipv6Addr>().unwrap());
        assert_eq!(uploads[1].0, THING_B.parse::<Ipv6Addr>().unwrap());
        assert_eq!(uploads[0].1, bytes);
        assert_eq!(c.stats.uploads_served, 2);
        assert_eq!(c.cached_version(p), Some(1));

        // Third request: a pure hit, answered immediately.
        let r3 = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        assert_eq!(sends(&r3).len(), 1);
        assert_eq!(c.stats.hits, 1);
    }

    #[test]
    fn duplicated_chunks_are_idempotent() {
        // A delay/duplicate link can hand the cache the same (19) chunk
        // twice, or echo one late. Every copy whose `chunk` is not the
        // stop-and-wait cursor must be dropped on the floor: no
        // double-write into the reassembly buffer, no extra chunk
        // requests, no stats skew — the image and the counters end
        // bit-identical to a clean transfer.
        let mut c = cache();
        let p = 0xad1c_be01;
        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        assert_eq!(sends(&r).len(), 1);

        let bytes = image_bytes();
        let chunks = chunks_of(&bytes, 1);
        assert!(chunks.len() >= 2, "image must span several chunks");
        let mut uploads = Vec::new();
        let mut requests = 0usize;
        for body in &chunks {
            let r = c.on_datagram(&dgram(ORIGIN, body.clone()));
            for d in sends(&r) {
                match Message::decode(&d.payload) {
                    Some(Message {
                        body: MessageBody::DriverUpload { image, .. },
                        ..
                    }) => uploads.push(image),
                    Some(Message {
                        body: MessageBody::DriverChunkRequest { .. },
                        ..
                    }) => requests += 1,
                    _ => {}
                }
            }
            // The doubled frame: delivered again right away, it must be
            // completely silent.
            let dup = c.on_datagram(&dgram(ORIGIN, body.clone()));
            assert!(sends(&dup).is_empty(), "duplicate chunk must be ignored");
        }
        // A late echo of the final chunk after the fetch completed is
        // just as silent (no in-flight fetch to confuse).
        let echo = c.on_datagram(&dgram(ORIGIN, chunks.last().unwrap().clone()));
        assert!(
            sends(&echo).is_empty(),
            "post-completion echo must be ignored"
        );

        assert_eq!(uploads.len(), 1, "exactly one upload served");
        assert_eq!(uploads[0], bytes, "image intact — no double-write");
        assert_eq!(requests, chunks.len() - 1, "one advance per unique chunk");
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.uploads_served, 1);
        assert_eq!(c.stats.chunk_retries, 0, "duplicates are not retries");
        assert_eq!(c.cached_version(p), Some(1));
    }

    #[test]
    fn timer_rerequests_lost_chunk_then_abandons() {
        let mut c = cache();
        let p = 0xad1c_be01;
        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let CacheAction::ArmTimer { gen, .. } = r.actions[1] else {
            panic!("miss must arm the retry timer");
        };
        // The chunk request (or its reply) was lost: the timer fires and
        // re-requests chunk 0, up to max_retries times.
        let mut gen = gen;
        for i in 0..c.config.max_retries {
            let r = c.on_timer(p, gen);
            assert_eq!(sends(&r).len(), 1, "retry {i} re-requests the chunk");
            let CacheAction::ArmTimer { gen: g, .. } = r.actions[1] else {
                panic!("retry re-arms");
            };
            gen = g;
        }
        assert_eq!(c.stats.chunk_retries, c.config.max_retries as u64);
        // One more expiry: abandoned — but the parked follower must be
        // failed over to a direct origin fetch, not stranded forever.
        let r = c.on_timer(p, gen);
        let out = sends(&r);
        assert_eq!(out.len(), 1, "abandon fails the waiter over to the origin");
        assert_eq!(out[0].dst, ORIGIN.parse::<Ipv6Addr>().unwrap());
        assert_eq!(
            out[0].src,
            THING_A.parse::<Ipv6Addr>().unwrap(),
            "the proxied request carries the follower as source so the \
             origin's upload goes straight back to the Thing"
        );
        let Some(Message {
            seq,
            body: MessageBody::DriverRequest { peripheral },
        }) = Message::decode(&out[0].payload)
        else {
            panic!("failover must be a (4) driver request");
        };
        assert_eq!(peripheral, p);
        assert_eq!(seq, 9, "the follower's original request seq is kept");
        assert_eq!(c.stats.failed_fetches, 1);
        assert_eq!(c.stats.failed_over, 1);
        assert_eq!(c.inflight_fetches(), 0);
    }

    #[test]
    fn abandon_fails_over_every_follower_in_arrival_order() {
        let mut c = cache();
        let p = 0xad1c_be01;
        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let CacheAction::ArmTimer { mut gen, .. } = r.actions[1] else {
            panic!("miss arms a timer");
        };
        c.on_datagram(&dgram(
            THING_B,
            MessageBody::DriverRequest { peripheral: p },
        ));
        for _ in 0..c.config.max_retries {
            let r = c.on_timer(p, gen);
            let CacheAction::ArmTimer { gen: g, .. } = r.actions[1] else {
                panic!("retry re-arms");
            };
            gen = g;
        }
        let r = c.on_timer(p, gen);
        let out = sends(&r);
        assert_eq!(out.len(), 2, "both followers failed over");
        assert_eq!(out[0].src, THING_A.parse::<Ipv6Addr>().unwrap());
        assert_eq!(out[1].src, THING_B.parse::<Ipv6Addr>().unwrap());
        assert!(out
            .iter()
            .all(|d| d.dst == ORIGIN.parse::<Ipv6Addr>().unwrap()));
        assert_eq!(c.stats.failed_over, 2);
    }

    #[test]
    fn slow_but_lossless_link_fetches_each_chunk_exactly_once() {
        // The gray-failure regression: a 10×-latency link delivers every
        // chunk, just slowly (600 ms round trip against the 250 ms base
        // timeout). A fixed-interval retry timer fires while each chunk
        // is merely in flight and re-requests every single one; the
        // exponential backoff must instead adapt within two expiries and
        // then fetch every remaining chunk exactly once, completing the
        // transfer with one fetch session and no abandon.
        let mut c = cache();
        let p = 0xad1c_be01;
        let rtt = SimDuration::from_millis(600);
        // The largest sample driver: 15 chunks, a long tail after the
        // backoff has adapted.
        let bytes = upnp_dsl::compile_source(upnp_dsl::drivers::BMP180, p)
            .expect("driver compiles")
            .to_bytes();
        let chunks = chunks_of(&bytes, 1);
        assert!(chunks.len() >= 4, "needs a tail after the adaptation");

        #[derive(Debug)]
        enum Ev {
            /// The origin's reply to a chunk request lands at the cache.
            Chunk(u16),
            /// A retry timer armed with this generation expires.
            Timer(u64),
        }
        let mut events: Vec<(SimDuration, Ev)> = Vec::new();
        let mut now = SimDuration::ZERO;
        let mut requests_per_chunk = vec![0u32; chunks.len()];
        let mut sessions = std::collections::BTreeSet::new();
        let mut uploads = 0;
        let absorb = |reply: &CacheReply,
                      now: SimDuration,
                      events: &mut Vec<(SimDuration, Ev)>,
                      requests_per_chunk: &mut Vec<u32>,
                      sessions: &mut std::collections::BTreeSet<SeqNo>,
                      uploads: &mut u32| {
            for a in &reply.actions {
                match a {
                    CacheAction::Send(d) => match Message::decode(&d.payload) {
                        Some(Message {
                            body: MessageBody::DriverChunkRequest { chunk, session, .. },
                            ..
                        }) => {
                            requests_per_chunk[chunk as usize] += 1;
                            sessions.insert(session);
                            // Lossless: the origin answers every request
                            // one round trip later.
                            events.push((now + rtt, Ev::Chunk(chunk)));
                        }
                        Some(Message {
                            body: MessageBody::DriverUpload { .. },
                            ..
                        }) => *uploads += 1,
                        _ => {}
                    },
                    CacheAction::ArmTimer { gen, after, .. } => {
                        events.push((now + *after, Ev::Timer(*gen)));
                    }
                }
            }
        };

        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        absorb(
            &r,
            now,
            &mut events,
            &mut requests_per_chunk,
            &mut sessions,
            &mut uploads,
        );
        while !events.is_empty() {
            // Pop the earliest event (stable on ties: chunks were pushed
            // before timers at the same instant).
            let i = (0..events.len())
                .min_by_key(|&i| events[i].0)
                .expect("non-empty");
            let (t, ev) = events.remove(i);
            now = t;
            let r = match ev {
                Ev::Chunk(i) => c.on_datagram(&dgram(ORIGIN, chunks[i as usize].clone())),
                Ev::Timer(gen) => c.on_timer(p, gen),
            };
            absorb(
                &r,
                now,
                &mut events,
                &mut requests_per_chunk,
                &mut sessions,
                &mut uploads,
            );
        }

        // The transfer completed through the slow link: one upload to
        // the one follower, image cached, nothing abandoned.
        assert_eq!(uploads, 1, "the parked follower is served");
        assert_eq!(c.cached_version(p), Some(1));
        assert_eq!(c.stats.failed_fetches, 0, "no abandon on a live link");
        assert_eq!(c.stats.failed_over, 0);
        assert_eq!(sessions.len(), 1, "one fetch session, never double-counted");
        // The backoff adapts within two expiries (250 → 500 → 1000 ms,
        // past the 600 ms round trip) and then holds, Karn-style.
        assert_eq!(
            c.stats.chunk_retries, 2,
            "exactly the two adaptation expiries, not one per chunk"
        );
        // Every chunk past the adaptation is requested exactly once —
        // the fixed-interval bug re-requested all of them.
        for (i, &n) in requests_per_chunk.iter().enumerate().skip(2) {
            assert_eq!(n, 1, "chunk {i} must be fetched exactly once, saw {n}");
        }
        assert!(requests_per_chunk[..2].iter().all(|&n| n <= 2));
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let c = cache();
        let base = c.config.retry_timeout;
        assert_eq!(c.retry_after(0), base);
        assert_eq!(c.retry_after(1), base * 2);
        assert_eq!(c.retry_after(RETRY_BACKOFF_CAP), base * 32);
        // Levels beyond the cap stop growing.
        assert_eq!(c.retry_after(RETRY_BACKOFF_CAP + 7), base * 32);
    }

    #[test]
    fn stale_timer_is_ignored_after_progress() {
        let mut c = cache();
        let p = 0xad1c_be01;
        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let CacheAction::ArmTimer { gen, .. } = r.actions[1] else {
            panic!("miss arms a timer");
        };
        // Chunk 0 arrives before the timer fires.
        let bytes = image_bytes();
        c.on_datagram(&dgram(ORIGIN, chunks_of(&bytes, 1)[0].clone()));
        let r = c.on_timer(p, gen);
        assert!(r.actions.is_empty(), "stale timer must be a no-op");
        assert_eq!(c.stats.chunk_retries, 0);
    }

    #[test]
    fn version_change_mid_fetch_restarts_coherently() {
        let mut c = cache();
        let p = 0xad1c_be01;
        c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let bytes = image_bytes();
        let v1 = chunks_of(&bytes, 1);
        let v2 = chunks_of(&bytes, 2);
        // Chunk 0 of v1, then the origin is updated: chunk 1 arrives as v2.
        c.on_datagram(&dgram(ORIGIN, v1[0].clone()));
        let r = c.on_datagram(&dgram(ORIGIN, v2[1].clone()));
        // The cache restarts: it re-requests chunk 0.
        let out = sends(&r);
        assert_eq!(out.len(), 1);
        let Some(Message {
            body: MessageBody::DriverChunkRequest { chunk, .. },
            ..
        }) = Message::decode(&out[0].payload)
        else {
            panic!("restart must re-request a chunk");
        };
        assert_eq!(chunk, 0, "restart goes back to chunk 0");
        // Replaying the full v2 transfer completes with version 2.
        for body in v2 {
            c.on_datagram(&dgram(ORIGIN, body));
        }
        assert_eq!(c.cached_version(p), Some(2));
    }

    fn chunk_request_of(d: &Datagram) -> (u16, SeqNo) {
        let Some(Message {
            body: MessageBody::DriverChunkRequest { chunk, session, .. },
            ..
        }) = Message::decode(&d.payload)
        else {
            panic!(
                "expected a chunk request, got {:?}",
                Message::decode(&d.payload)
            );
        };
        (chunk, session)
    }

    #[test]
    fn restart_after_version_change_carries_fresh_session() {
        let mut c = cache();
        let p = 0xad1c_be01;
        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let (_, s1) = chunk_request_of(sends(&r)[0]);
        let bytes = image_bytes();
        let v1 = chunks_of(&bytes, 1);
        let v2 = chunks_of(&bytes, 2);
        c.on_datagram(&dgram(ORIGIN, v1[0].clone()));
        // Mid-fetch version change: the restart is a NEW fetch session,
        // so its chunk-0 re-request must carry a fresh nonce — replaying
        // the stale one makes the origin's dedup swallow the session.
        let r = c.on_datagram(&dgram(ORIGIN, v2[1].clone()));
        let (chunk, s2) = chunk_request_of(sends(&r)[0]);
        assert_eq!(chunk, 0, "restart goes back to chunk 0");
        assert_ne!(s2, s1, "restarted transfer must take a fresh session nonce");
    }

    #[test]
    fn failover_same_version_resumes_from_cursor() {
        const STANDBY: &str = "2001:db8::2";
        let mut c = cache();
        let p = 0xad1c_be01;
        c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let bytes = image_bytes();
        let v1 = chunks_of(&bytes, 1);
        assert!(v1.len() >= 2, "failover test needs a mid-transfer cursor");
        // Chunk 0 arrives from the primary origin: cursor moves to 1.
        let r = c.on_datagram(&dgram(ORIGIN, v1[0].clone()));
        let (_, s1) = chunk_request_of(sends(&r)[0]);
        let CacheAction::ArmTimer { gen: old_gen, .. } = r.actions[1] else {
            panic!("progress re-arms the timer");
        };
        // The origin fails over: the standby replays chunk 0 at the SAME
        // version. That is not a new image — the transfer must resume
        // from the cursor (chunk 1), not restart or silently stall.
        let r = c.on_datagram(&dgram(STANDBY, v1[0].clone()));
        let out = sends(&r);
        assert_eq!(out.len(), 1, "failover resumes actively");
        let (chunk, s2) = chunk_request_of(out[0]);
        assert_eq!(chunk, 1, "resume continues at the stop-and-wait cursor");
        assert_eq!(s2, s1, "same version, same fetch session");
        // Generation-stamp path: the resume re-stamps the fetch, so the
        // timer armed before the failover is stale and must be a no-op.
        let CacheAction::ArmTimer { gen: new_gen, .. } = r.actions[1] else {
            panic!("resume re-arms the timer");
        };
        assert_ne!(new_gen, old_gen);
        assert!(c.on_timer(p, old_gen).actions.is_empty(), "stale timer");
        // The standby finishes the transfer.
        for body in v1.into_iter().skip(1) {
            c.on_datagram(&dgram(STANDBY, body));
        }
        assert_eq!(c.cached_version(p), Some(1));
        assert_eq!(c.stats.uploads_served, 1);
    }

    #[test]
    fn crash_drops_state_but_surfaces_parked_followers() {
        let mut c = cache();
        let p = 0xad1c_be01;
        // A warm entry and an in-flight fetch with two parked followers.
        c.insert(7, 1, image_bytes());
        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let CacheAction::ArmTimer { gen, .. } = r.actions[1] else {
            panic!("miss arms a timer");
        };
        c.on_datagram(&dgram(
            THING_B,
            MessageBody::DriverRequest { peripheral: p },
        ));
        let stranded = c.crash();
        // RAM is gone; the followers are handed back in arrival order so
        // the world can re-resolve them to another anycast instance.
        assert_eq!(
            stranded,
            vec![
                (p, THING_A.parse().unwrap(), 9, TraceCtx::NONE),
                (p, THING_B.parse().unwrap(), 9, TraceCtx::NONE),
            ]
        );
        assert!(c.is_empty());
        assert_eq!(c.inflight_fetches(), 0);
        // Counters survive (external observability, not cache RAM).
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.coalesced, 1);
        // A pre-crash retry timer is stale after the cold restart.
        assert!(c.on_timer(p, gen).actions.is_empty());
        // The restarted cache serves from cold: a request is a miss.
        let r = c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        assert_eq!(sends(&r).len(), 1, "cold restart fetches again");
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_bound_evicts_oldest() {
        let mut c = EdgeCache::new(
            NodeId(1),
            "2001:db8::c".parse().unwrap(),
            ORIGIN.parse().unwrap(),
            CacheConfig {
                capacity: 2,
                ..CacheConfig::default()
            },
        );
        c.insert(1, 1, image_bytes());
        c.insert(2, 1, image_bytes());
        c.touch(1); // 2 is now the least recently used.
        c.insert(3, 1, image_bytes());
        assert_eq!(c.len(), 2);
        assert!(c.cached_version(1).is_some());
        assert!(c.cached_version(2).is_none(), "LRU victim");
        assert!(c.cached_version(3).is_some());
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn removal_and_invalidation_evict() {
        let mut c = cache();
        c.insert(7, 2, image_bytes());
        // (20) with an older-or-equal version: no-op.
        c.on_datagram(&dgram(
            ORIGIN,
            MessageBody::DriverInvalidate {
                peripheral: 7,
                version: 2,
                delta: None,
            },
        ));
        assert_eq!(c.cached_version(7), Some(2));
        // (20) with a newer version: evicted.
        c.on_datagram(&dgram(
            ORIGIN,
            MessageBody::DriverInvalidate {
                peripheral: 7,
                version: 3,
                delta: None,
            },
        ));
        assert_eq!(c.cached_version(7), None);
        // (8) removal: evicted and acked.
        c.insert(8, 1, image_bytes());
        let r = c.on_datagram(&dgram(ORIGIN, MessageBody::DriverRemoval { peripheral: 8 }));
        let out = sends(&r);
        assert_eq!(out.len(), 1);
        let Some(Message {
            body: MessageBody::DriverRemovalAck { removed, .. },
            ..
        }) = Message::decode(&out[0].payload)
        else {
            panic!("removal must be acked");
        };
        assert!(removed);
        assert_eq!(c.cached_version(8), None);
        assert_eq!(c.stats.invalidations, 2);
    }

    #[test]
    fn delta_invalidation_patches_in_place() {
        let mut c = cache();
        let p = 0xad1c_be01;
        let old =
            upnp_dsl::compile_source_with(upnp_dsl::drivers::TMP36, p, upnp_dsl::OptLevel::None)
                .expect("driver compiles")
                .to_bytes();
        let new = image_bytes(); // same driver at full optimisation
        assert_ne!(old, new, "the two versions must differ for a real patch");
        c.insert(p, 1, old.clone());
        let patch = upnp_dsl::ImageDelta::diff(&old, &new);
        c.on_datagram(&dgram(
            ORIGIN,
            MessageBody::DriverInvalidate {
                peripheral: p,
                version: 2,
                delta: Some(patch.to_bytes()),
            },
        ));
        assert_eq!(c.cached_version(p), Some(2), "upgraded, not evicted");
        assert_eq!(
            c.entries[&p].bytes, new,
            "patched bytes are bit-equal to the full v2 image"
        );
        assert_eq!(c.stats.delta_patched, 1);
        assert_eq!(
            c.stats.delta_chunks_skipped,
            (patch.total_chunks() - patch.chunks.len()) as u64
        );
        assert_eq!(c.stats.invalidations, 0, "no eviction happened");
    }

    #[test]
    fn wrong_base_delta_falls_back_to_eviction() {
        let mut c = cache();
        let p = 0xad1c_be01;
        c.insert(p, 1, image_bytes());
        // A patch diffed against a different base image: the base
        // checksum cannot match the cached bytes.
        let other = upnp_dsl::compile_source(upnp_dsl::drivers::BMP180, p)
            .expect("driver compiles")
            .to_bytes();
        let patch = upnp_dsl::ImageDelta::diff(&other, &image_bytes());
        c.on_datagram(&dgram(
            ORIGIN,
            MessageBody::DriverInvalidate {
                peripheral: p,
                version: 2,
                delta: Some(patch.to_bytes()),
            },
        ));
        assert_eq!(c.cached_version(p), None, "rejected patch ⇒ plain eviction");
        assert_eq!(c.stats.delta_rejected, 1);
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn malformed_delta_wire_form_falls_back_to_eviction() {
        let mut c = cache();
        let p = 0xad1c_be01;
        c.insert(p, 1, image_bytes());
        c.on_datagram(&dgram(
            ORIGIN,
            MessageBody::DriverInvalidate {
                peripheral: p,
                version: 2,
                delta: Some(vec![0xff; 5]),
            },
        ));
        assert_eq!(c.cached_version(p), None);
        assert_eq!(c.stats.delta_rejected, 1);
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn trace_context_propagates_through_fetch_and_followers() {
        use upnp_trace::{SpanId, TraceId};

        let ctx_a = TraceCtx {
            trace: TraceId(0xaaaa),
            parent: SpanId(0xa1),
        };
        let ctx_b = TraceCtx {
            trace: TraceId(0xbbbb),
            parent: SpanId(0xb1),
        };
        let traced = |src: &str, body: MessageBody, ctx: TraceCtx| {
            let mut d = dgram(src, body);
            d.payload = d.payload.with_trace(ctx);
            d
        };
        let mut c = cache();
        let p = 0xad1c_be01;

        // Miss: the chunk request upstream carries the initiator's ctx.
        let r = c.on_datagram(&traced(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
            ctx_a,
        ));
        assert_eq!(sends(&r)[0].payload.trace(), ctx_a);
        // Follower parks with its own ctx.
        c.on_datagram(&traced(
            THING_B,
            MessageBody::DriverRequest { peripheral: p },
            ctx_b,
        ));

        // Every chunk advance (and the completion uploads) keep lineage.
        let bytes = image_bytes();
        let mut uploads = Vec::new();
        for body in chunks_of(&bytes, 1) {
            let r = c.on_datagram(&dgram(ORIGIN, body));
            for d in sends(&r) {
                match Message::decode(&d.payload).map(|m| m.body) {
                    Some(MessageBody::DriverChunkRequest { .. }) => {
                        assert_eq!(
                            d.payload.trace(),
                            ctx_a,
                            "retransfer leg keeps initiator ctx"
                        );
                    }
                    Some(MessageBody::DriverUpload { .. }) => {
                        uploads.push((d.dst, d.payload.trace()));
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(
            uploads,
            vec![
                (THING_A.parse().unwrap(), ctx_a),
                (THING_B.parse().unwrap(), ctx_b),
            ],
            "each follower's upload carries that follower's own context"
        );

        // Cache hit: the upload carries the requester's context.
        let r = c.on_datagram(&traced(
            THING_B,
            MessageBody::DriverRequest { peripheral: p },
            ctx_b,
        ));
        assert_eq!(sends(&r)[0].payload.trace(), ctx_b);
    }

    #[test]
    fn trace_context_survives_retries_and_failover() {
        use upnp_trace::{SpanId, TraceId};

        let ctx_a = TraceCtx {
            trace: TraceId(0xaaaa),
            parent: SpanId(0xa1),
        };
        let ctx_b = TraceCtx {
            trace: TraceId(0xbbbb),
            parent: SpanId(0xb1),
        };
        let traced = |src: &str, body: MessageBody, ctx: TraceCtx| {
            let mut d = dgram(src, body);
            d.payload = d.payload.with_trace(ctx);
            d
        };
        let mut c = cache();
        let p = 0xad1c_be01;
        let r = c.on_datagram(&traced(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
            ctx_a,
        ));
        let CacheAction::ArmTimer { mut gen, .. } = r.actions[1] else {
            panic!("miss arms a timer");
        };
        c.on_datagram(&traced(
            THING_B,
            MessageBody::DriverRequest { peripheral: p },
            ctx_b,
        ));
        // Retries re-request with the initiator's ctx.
        for _ in 0..c.config.max_retries {
            let r = c.on_timer(p, gen);
            assert_eq!(sends(&r)[0].payload.trace(), ctx_a);
            let CacheAction::ArmTimer { gen: g, .. } = r.actions[1] else {
                panic!("retry re-arms");
            };
            gen = g;
        }
        // Abandon: each follower's proxied failover request carries that
        // follower's own context.
        let r = c.on_timer(p, gen);
        let out = sends(&r);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload.trace(), ctx_a);
        assert_eq!(out[1].payload.trace(), ctx_b);
    }

    #[test]
    fn corrupt_reassembly_is_rejected_not_cached() {
        let mut c = cache();
        let p = 0xad1c_be01;
        c.on_datagram(&dgram(
            THING_A,
            MessageBody::DriverRequest { peripheral: p },
        ));
        // A single garbage chunk claiming to be the whole image.
        let r = c.on_datagram(&dgram(
            ORIGIN,
            MessageBody::DriverChunk {
                peripheral: p,
                version: 1,
                chunk: 0,
                total: 1,
                data: vec![0xff; 10],
            },
        ));
        assert!(sends(&r).is_empty(), "no upload from garbage");
        assert_eq!(c.cached_version(p), None);
        assert_eq!(c.stats.failed_fetches, 1);
    }
}
