//! Measured per-sample communication energy for each interconnect.
//!
//! Figure 12 models "an ideal peripheral which consumes no energy except
//! for communication", communicating every ten seconds. The energy of one
//! communication is *measured*, not assumed: a full runtime is stood up
//! (driver + VM + event router + bus simulation), one read is executed,
//! and the MCU + bus meters are differenced. This automatically includes
//! everything the paper's measurement would: VM dispatch, event routing,
//! bus wire time and conversion waits.

use upnp_dsl::compile_source;
use upnp_hw::peripheral::Interconnect;
use upnp_vm::runtime::{PendingKind, Runtime};

/// Measures the energy of one read over the given interconnect, joules.
///
/// The measurement covers the whole split-phase pipeline: `read` event →
/// native-library call → bus transaction(s) → completion event(s) →
/// returned value.
pub fn one_read_energy_j(bus: Interconnect) -> f64 {
    let mut rt = Runtime::new(0xe0);
    let (driver, device_id): (&str, u32) = match bus {
        Interconnect::Adc => (upnp_dsl::drivers::TMP36, 0xad1c_be01),
        Interconnect::I2c => (upnp_dsl::drivers::BMP180, 0xed3f_bda1),
        Interconnect::Uart => (upnp_dsl::drivers::ID20LA, 0xed3f_0ac1),
        Interconnect::Spi => (upnp_dsl::drivers::MAX6675, 0x0a0b_bf03),
    };
    match bus {
        Interconnect::Adc => {
            rt.hw
                .analog_sources
                .insert(0, Box::new(upnp_bus::peripherals::Tmp36::new()));
        }
        Interconnect::I2c => {
            rt.hw.i2c.attach(
                upnp_bus::peripherals::BMP180_I2C_ADDR,
                Box::new(upnp_bus::peripherals::Bmp180::noiseless(1)),
            );
        }
        Interconnect::Uart => {
            rt.hw.uart_device = Some(Box::new(upnp_bus::peripherals::Id20La::new()));
        }
        Interconnect::Spi => {
            rt.hw
                .spi
                .attach(Box::new(upnp_bus::peripherals::Max6675::new()));
        }
    }
    let image = compile_source(driver, device_id).expect("shipped drivers compile");
    let slot = rt.install_driver(image, 0).expect("fresh runtime");
    rt.run_until_idle();
    // UART: a card must be in the field for the read to complete.
    if bus == Interconnect::Uart {
        rt.hw.env.present_card("0415AB09CD");
    }
    let e0 = rt.cpu_energy_j() + rt.bus_energy_j();
    rt.request(slot, PendingKind::Read, Vec::new());
    let done = rt.run_until_idle();
    debug_assert!(!done.is_empty(), "read must complete for {bus}");
    rt.cpu_energy_j() + rt.bus_energy_j() - e0
}

/// The three interconnects Figure 12 sweeps (SPI is the reproduction's
/// extension and can be included by callers explicitly).
pub const FIGURE_12_BUSES: [Interconnect; 3] =
    [Interconnect::Adc, Interconnect::I2c, Interconnect::Uart];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reads_complete_and_cost_microjoules() {
        for bus in [
            Interconnect::Adc,
            Interconnect::I2c,
            Interconnect::Uart,
            Interconnect::Spi,
        ] {
            let e = one_read_energy_j(bus);
            assert!(
                e > 1e-7 && e < 1e-2,
                "{bus}: {e:.2e} J outside plausible band"
            );
        }
    }

    #[test]
    fn interconnects_have_distinct_costs() {
        // Figure 12: "Power results for the different embedded
        // interconnects tend to diverge at low rates of peripheral
        // change" — their per-sample costs must differ measurably.
        let adc = one_read_energy_j(Interconnect::Adc);
        let i2c = one_read_energy_j(Interconnect::I2c);
        let uart = one_read_energy_j(Interconnect::Uart);
        assert!(
            adc < i2c,
            "ADC ({adc:.2e}) must be cheapest (vs I2C {i2c:.2e})"
        );
        assert!(adc < uart, "ADC ({adc:.2e}) vs UART ({uart:.2e})");
        let spread = (i2c.max(uart)) / adc;
        assert!(spread > 2.0, "spread {spread:.1}× too small to diverge");
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = one_read_energy_j(Interconnect::Adc);
        let b = one_read_energy_j(Interconnect::Adc);
        assert_eq!(a, b);
    }
}
