//! The USB host controller baseline (paper §6.1).
//!
//! "In the case of the USB controller energy consumption is based upon the
//! minimum idle power consumption of the USB host controller [the
//! MAX3421E] and therefore represents the worst-case energy comparison for
//! µPnP." A USB host must stay powered to notice attach/detach events, so
//! its year-long energy is dominated by idle draw no matter how rarely
//! peripherals change — that is the flat line of Figure 12.

use upnp_sim::SimDuration;

/// The Arduino USB Host shield (MAX3421E) energy model.
#[derive(Debug, Clone, Copy)]
pub struct UsbHostModel {
    /// Supply voltage, volts.
    pub supply_v: f64,
    /// Minimum idle (powered, no transfer) current, amps.
    pub idle_a: f64,
    /// Energy per device enumeration, joules (bus reset + descriptor
    /// exchange, ~100 ms of active transfers).
    pub enumeration_j: f64,
}

impl Default for UsbHostModel {
    fn default() -> Self {
        Self::max3421e()
    }
}

impl UsbHostModel {
    /// The MAX3421E on the Arduino USB Host shield: ≈13.5 mA operating
    /// current at 3.3 V (datasheet "operating supply current").
    pub fn max3421e() -> Self {
        UsbHostModel {
            supply_v: 3.3,
            idle_a: 13.5e-3,
            enumeration_j: 5e-3,
        }
    }

    /// Idle power, watts.
    pub fn idle_w(&self) -> f64 {
        self.supply_v * self.idle_a
    }

    /// Energy over `horizon` with `changes` attach/detach events, joules.
    pub fn energy_j(&self, horizon: SimDuration, changes: u64) -> f64 {
        self.idle_w() * horizon.as_secs_f64() + self.enumeration_j * changes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_is_tens_of_milliwatts() {
        let m = UsbHostModel::max3421e();
        assert!((m.idle_w() - 0.04455).abs() < 1e-6);
    }

    #[test]
    fn year_energy_is_megajoule_scale() {
        let m = UsbHostModel::max3421e();
        let year = SimDuration::from_secs(365 * 24 * 3600);
        let e = m.energy_j(year, 0);
        assert!(e > 1.2e6 && e < 1.6e6, "{e} J");
    }

    #[test]
    fn idle_dominates_enumerations() {
        // Even hourly changes add only ~44 J against 1.4 MJ of idle.
        let m = UsbHostModel::max3421e();
        let year = SimDuration::from_secs(365 * 24 * 3600);
        let idle_only = m.energy_j(year, 0);
        let hourly = m.energy_j(year, 8766);
        assert!((hourly - idle_only) / idle_only < 0.001);
    }
}
