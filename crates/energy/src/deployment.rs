//! The Figure 12 deployment simulation.
//!
//! "We simulate a one-year IoT deployment ... the energy consumption of an
//! Arduino USB host shield against the energy consumption of the µPnP
//! shield when connected to ADC, I2C, and UART-based peripherals.
//! Peripherals communicate once every ten seconds." Both axes of the
//! figure are logarithmic: change rate from 1 minute to 10⁶ minutes, and
//! one-year energy in joules.

use upnp_hw::peripheral::Interconnect;
use upnp_sim::{SimDuration, SimRng};

use crate::ident::{ident_energy_stats, random_ids};
use crate::interconnect::one_read_energy_j;
use crate::usb::UsbHostModel;

/// The technologies Figure 12 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technology {
    /// Always-powered USB host controller.
    UsbHost,
    /// µPnP board with a peripheral on the given interconnect.
    Upnp(Interconnect),
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Technology::UsbHost => write!(f, "USB host"),
            Technology::Upnp(bus) => write!(f, "uPnP+{bus}"),
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct YearConfig {
    /// Simulation horizon (the paper uses one year).
    pub horizon: SimDuration,
    /// Time between peripheral communications (the paper uses 10 s).
    pub comm_period: SimDuration,
    /// Identification-energy samples per point (error bars).
    pub ident_samples: usize,
    /// RNG seed for the id sampling.
    pub seed: u64,
}

impl Default for YearConfig {
    fn default() -> Self {
        YearConfig {
            horizon: SimDuration::from_secs(365 * 24 * 3600),
            comm_period: SimDuration::from_secs(10),
            ident_samples: 64,
            seed: 0x0f12,
        }
    }
}

/// One point of the Figure 12 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentPoint {
    /// The swept change rate: minutes between peripheral changes.
    pub rate_minutes: u64,
    /// The technology.
    pub technology: Technology,
    /// Mean one-year energy, joules.
    pub energy_j: f64,
    /// One standard deviation (resistor-value spread), joules. Zero for
    /// USB.
    pub std_j: f64,
}

/// Simulates one year for one technology at one change rate.
pub fn simulate_year(
    technology: Technology,
    rate_minutes: u64,
    config: &YearConfig,
) -> DeploymentPoint {
    assert!(rate_minutes > 0, "rate must be positive");
    let horizon_s = config.horizon.as_secs_f64();
    let changes = (horizon_s / (rate_minutes as f64 * 60.0)).floor() as u64;
    let comms = (horizon_s / config.comm_period.as_secs_f64()).floor() as u64;

    match technology {
        Technology::UsbHost => DeploymentPoint {
            rate_minutes,
            technology,
            energy_j: UsbHostModel::max3421e().energy_j(config.horizon, changes),
            std_j: 0.0,
        },
        Technology::Upnp(bus) => {
            // Identification energy: each change triggers one scan; the id
            // (resistor set) varies, giving the error bars.
            let mut rng = SimRng::seed(config.seed);
            let ids = random_ids(config.ident_samples.max(1), &mut rng);
            let stats = ident_energy_stats(&ids);
            // The ideal peripheral consumes nothing except communication.
            let comm_j = one_read_energy_j(bus) * comms as f64;
            let mean = stats.mean_energy_j * changes as f64 + comm_j;
            let std = stats.std_energy_j * changes as f64;
            DeploymentPoint {
                rate_minutes,
                technology,
                energy_j: mean,
                std_j: std,
            }
        }
    }
}

/// The paper's x-axis sample points (log scale, 1 to 10⁶ minutes).
pub const FIGURE_12_RATES: [u64; 7] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Runs the full Figure 12 sweep.
pub fn figure_12(config: &YearConfig) -> Vec<DeploymentPoint> {
    let mut out = Vec::new();
    for &rate in &FIGURE_12_RATES {
        out.push(simulate_year(Technology::UsbHost, rate, config));
        for bus in crate::interconnect::FIGURE_12_BUSES {
            out.push(simulate_year(Technology::Upnp(bus), rate, config));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> YearConfig {
        YearConfig {
            ident_samples: 16,
            ..YearConfig::default()
        }
    }

    #[test]
    fn usb_is_flat_across_change_rates() {
        let config = fast_config();
        let slow = simulate_year(Technology::UsbHost, 1_000_000, &config);
        let fast = simulate_year(Technology::UsbHost, 1, &config);
        // Idle dominates: less than 0.5 % variation across six decades.
        assert!((fast.energy_j - slow.energy_j) / slow.energy_j < 0.005);
        assert!(slow.energy_j > 1e6);
    }

    #[test]
    fn upnp_scales_with_change_rate_then_floors() {
        let config = fast_config();
        let e1 = simulate_year(Technology::Upnp(Interconnect::Adc), 1, &config).energy_j;
        let e100 = simulate_year(Technology::Upnp(Interconnect::Adc), 100, &config).energy_j;
        let e1m = simulate_year(Technology::Upnp(Interconnect::Adc), 1_000_000, &config).energy_j;
        // Linear region: 100× fewer changes ≈ close to 100× less ident
        // energy (plus the comm floor).
        assert!(e1 / e100 > 20.0, "{e1} vs {e100}");
        // Floor region: the comm energy dominates, rate changes nothing.
        let e100k = simulate_year(Technology::Upnp(Interconnect::Adc), 100_000, &config).energy_j;
        assert!((e100k - e1m) / e1m < 0.2);
    }

    #[test]
    fn paper_headline_hourly_changes_four_orders_of_magnitude() {
        // "where peripherals are changed on an hourly basis, the energy
        // consumption of µPnP is over four orders of magnitude lower than
        // the USB shield".
        let config = fast_config();
        let usb = simulate_year(Technology::UsbHost, 60, &config).energy_j;
        let upnp = simulate_year(Technology::Upnp(Interconnect::Adc), 60, &config).energy_j;
        let ratio = usb / upnp;
        assert!(
            ratio > 1e4,
            "USB/µPnP ratio {ratio:.0} below four orders of magnitude"
        );
    }

    #[test]
    fn interconnects_diverge_at_low_change_rates() {
        let config = fast_config();
        let rate = 1_000_000;
        let adc = simulate_year(Technology::Upnp(Interconnect::Adc), rate, &config).energy_j;
        let i2c = simulate_year(Technology::Upnp(Interconnect::I2c), rate, &config).energy_j;
        let uart = simulate_year(Technology::Upnp(Interconnect::Uart), rate, &config).energy_j;
        assert!(adc < i2c && adc < uart, "ADC floor must be lowest");
        // And µPnP always beats USB, even at the floor.
        let usb = simulate_year(Technology::UsbHost, rate, &config).energy_j;
        assert!(usb / adc.max(i2c).max(uart) > 1e2);
    }

    #[test]
    fn error_bars_exist_for_upnp_only() {
        let config = fast_config();
        let usb = simulate_year(Technology::UsbHost, 60, &config);
        let upnp = simulate_year(Technology::Upnp(Interconnect::I2c), 60, &config);
        assert_eq!(usb.std_j, 0.0);
        assert!(upnp.std_j > 0.0);
    }

    #[test]
    fn full_sweep_has_all_series() {
        let mut config = fast_config();
        config.ident_samples = 8;
        let points = figure_12(&config);
        assert_eq!(points.len(), FIGURE_12_RATES.len() * 4);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        simulate_year(Technology::UsbHost, 0, &fast_config());
    }
}
