//! Identification-energy statistics (paper §6.1).
//!
//! "The length of the identifying signal varies depending on the resistors
//! used on peripheral boards, which leads to different energy
//! consumption." This module samples the scan-time/energy distribution
//! over the device-id space — the source of Figure 12's error bars.

use upnp_hw::board::ControlBoard;
use upnp_hw::channels::ChannelId;
use upnp_hw::id::DeviceTypeId;
use upnp_hw::peripheral::{Interconnect, PeripheralBoard};
use upnp_sim::{SimRng, SimTime};

/// Summary statistics of identification scans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentStats {
    /// Number of scans sampled.
    pub samples: usize,
    /// Mean scan duration, seconds.
    pub mean_time_s: f64,
    /// Minimum scan duration, seconds.
    pub min_time_s: f64,
    /// Maximum scan duration, seconds.
    pub max_time_s: f64,
    /// Mean scan energy, joules.
    pub mean_energy_j: f64,
    /// Minimum scan energy, joules.
    pub min_energy_j: f64,
    /// Maximum scan energy, joules.
    pub max_energy_j: f64,
    /// Standard deviation of scan energy, joules.
    pub std_energy_j: f64,
}

/// Samples identification scans for `ids` (one peripheral per scan, other
/// channels empty), using ideal components so the spread reflects the
/// resistor-value (id) distribution, as in §6.1.
pub fn ident_energy_stats(ids: &[DeviceTypeId]) -> IdentStats {
    let mut times = Vec::with_capacity(ids.len());
    let mut energies = Vec::with_capacity(ids.len());
    for &id in ids {
        let mut board = ControlBoard::ideal();
        let p = PeripheralBoard::manufacture_ideal(id, Interconnect::Adc)
            .expect("unreserved ids solve");
        board.plug(ChannelId(0), p).expect("empty channel");
        let outcome = board.scan(SimTime::ZERO, 25.0);
        times.push(outcome.duration().as_secs_f64());
        energies.push(outcome.energy_j);
    }
    stats_of(&times, &energies)
}

/// Samples `n` uniformly random device ids.
pub fn random_ids(n: usize, rng: &mut SimRng) -> Vec<DeviceTypeId> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = DeviceTypeId::new(rng.next_u32());
        if !id.is_reserved() {
            out.push(id);
        }
    }
    out
}

fn stats_of(times: &[f64], energies: &[f64]) -> IdentStats {
    assert!(!times.is_empty());
    let n = times.len() as f64;
    let mean_t = times.iter().sum::<f64>() / n;
    let mean_e = energies.iter().sum::<f64>() / n;
    let var_e = energies.iter().map(|e| (e - mean_e).powi(2)).sum::<f64>() / n;
    IdentStats {
        samples: times.len(),
        mean_time_s: mean_t,
        min_time_s: times.iter().cloned().fold(f64::INFINITY, f64::min),
        max_time_s: times.iter().cloned().fold(0.0, f64::max),
        mean_energy_j: mean_e,
        min_energy_j: energies.iter().cloned().fold(f64::INFINITY, f64::min),
        max_energy_j: energies.iter().cloned().fold(0.0, f64::max),
        std_energy_j: var_e.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_hw::id::prototypes;

    #[test]
    fn prototype_scan_times_match_section_6_1() {
        let stats = ident_energy_stats(&prototypes::ALL);
        // "the time required varies between 220 ms and 300 ms".
        assert!(
            stats.min_time_s >= 0.21 && stats.max_time_s <= 0.31,
            "prototype scans {:.3}-{:.3} s",
            stats.min_time_s,
            stats.max_time_s
        );
        // Energy band: paper maximum is 6.756 mJ; ours must bracket it
        // within the documented calibration (see EXPERIMENTS.md §6.1).
        assert!(
            stats.max_energy_j > 4e-3 && stats.max_energy_j < 8e-3,
            "max energy {:.3} mJ",
            stats.max_energy_j * 1e3
        );
        assert!(stats.min_energy_j > 2e-3);
    }

    #[test]
    fn random_id_distribution_is_wider_than_prototypes() {
        let mut rng = SimRng::seed(42);
        let ids = random_ids(300, &mut rng);
        let random = ident_energy_stats(&ids);
        let protos = ident_energy_stats(&prototypes::ALL);
        assert!(random.min_time_s < protos.min_time_s);
        assert!(random.max_time_s > protos.max_time_s);
        assert!(random.std_energy_j > 0.0);
    }

    #[test]
    fn energy_scales_with_scan_time() {
        // Longest-id scans must cost more than shortest-id scans.
        let slow = ident_energy_stats(&[DeviceTypeId::new(0xffff_fffe)]);
        let fast = ident_energy_stats(&[DeviceTypeId::new(0x0101_0101)]);
        assert!(slow.mean_energy_j > fast.mean_energy_j * 1.5);
        assert!(slow.mean_time_s > fast.mean_time_s);
    }

    #[test]
    fn random_ids_excludes_reserved() {
        let mut rng = SimRng::seed(43);
        for id in random_ids(1000, &mut rng) {
            assert!(!id.is_reserved());
        }
    }
}
