//! Energy models and the one-year deployment simulator (paper §6.1,
//! Figure 12).
//!
//! The paper's headline hardware result: µPnP identification costs orders
//! of magnitude less energy than keeping a USB host controller around.
//! Three models compose the comparison:
//!
//! * [`ident`] — the distribution of µPnP identification-scan energy over
//!   the device-id space (scan time varies with the resistor values, so
//!   energy does too — the error bars of Figure 12);
//! * [`usb`] — the Arduino USB Host shield (MAX3421E) baseline: idle power
//!   all year plus per-enumeration energy;
//! * [`interconnect`] — measured per-sample communication energy for each
//!   bus family, obtained by running one real read through the full
//!   runtime (driver + VM + bus sim) and metering it;
//! * [`deployment`] — the Figure 12 sweep: one-year energy versus
//!   peripheral change rate, for USB and µPnP+{ADC, I²C, UART}.

pub mod deployment;
pub mod ident;
pub mod interconnect;
pub mod usb;

pub use deployment::{simulate_year, DeploymentPoint, Technology, YearConfig};
pub use ident::{ident_energy_stats, IdentStats};
pub use usb::UsbHostModel;
