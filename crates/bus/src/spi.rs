//! SPI bus controller model.
//!
//! The µPnP connector reserves pins for SPI (Table 1: MOSI/MISO/SCK) even
//! though none of the paper's four prototype peripherals uses it. The model
//! implements full-duplex byte transfers with the four clock modes, so SPI
//! peripherals can be added the same way as the others (the test suite uses
//! a simple thermocouple-style device).

use upnp_sim::SimDuration;

use crate::BusTransaction;

/// SPI clock polarity/phase mode (0–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpiMode {
    /// CPOL=0, CPHA=0.
    Mode0,
    /// CPOL=0, CPHA=1.
    Mode1,
    /// CPOL=1, CPHA=0.
    Mode2,
    /// CPOL=1, CPHA=1.
    Mode3,
}

/// A device on the SPI bus (single chip-select).
///
/// `Send` so boxed devices can live inside Things that migrate to shard
/// worker threads.
pub trait SpiDevice: Send {
    /// Full-duplex transfer: receives the master's byte, returns the
    /// slave's simultaneous output byte.
    fn transfer(&mut self, mosi: u8, env: &mut crate::Environment) -> u8;

    /// Chip-select asserted (start of a transaction).
    fn select(&mut self) {}

    /// Chip-select released (end of a transaction).
    fn deselect(&mut self) {}
}

/// The MCU-side SPI master with one attached device.
pub struct SpiBus {
    /// SCK frequency in hertz.
    pub clock_hz: u64,
    /// Clock mode.
    pub mode: SpiMode,
    device: Option<Box<dyn SpiDevice>>,
}

impl SpiBus {
    /// Creates a 1 MHz mode-0 bus with no device attached.
    pub fn new() -> Self {
        SpiBus {
            clock_hz: 1_000_000,
            mode: SpiMode::Mode0,
            device: None,
        }
    }

    /// Attaches the (single) device.
    pub fn attach(&mut self, device: Box<dyn SpiDevice>) {
        self.device = Some(device);
    }

    /// Detaches the device, if any.
    pub fn detach(&mut self) -> bool {
        self.device.take().is_some()
    }

    /// True if a device is attached.
    pub fn connected(&self) -> bool {
        self.device.is_some()
    }

    /// Runs a full-duplex transaction: sends `tx`, returns the bytes
    /// clocked back, or `None` if no device is attached.
    pub fn transfer(
        &mut self,
        tx: &[u8],
        env: &mut crate::Environment,
    ) -> Option<(Vec<u8>, BusTransaction)> {
        let dev = self.device.as_mut()?;
        dev.select();
        let rx: Vec<u8> = tx.iter().map(|&b| dev.transfer(b, env)).collect();
        dev.deselect();
        let duration = SimDuration::from_nanos(tx.len() as u64 * 8 * 1_000_000_000 / self.clock_hz);
        Some((
            rx,
            BusTransaction {
                duration,
                energy_j: duration.as_secs_f64() * 3.3 * 4.1e-3,
                bytes: tx.len(),
            },
        ))
    }
}

impl Default for SpiBus {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SpiBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpiBus")
            .field("clock_hz", &self.clock_hz)
            .field("mode", &self.mode)
            .field("connected", &self.connected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    /// Echoes the previous MOSI byte back (one-byte delay line).
    struct Echo {
        last: u8,
        selected: bool,
    }

    impl SpiDevice for Echo {
        fn transfer(&mut self, mosi: u8, _env: &mut Environment) -> u8 {
            let out = self.last;
            self.last = mosi;
            out
        }

        fn select(&mut self) {
            self.selected = true;
        }

        fn deselect(&mut self) {
            self.selected = false;
        }
    }

    #[test]
    fn full_duplex_transfer() {
        let mut bus = SpiBus::new();
        bus.attach(Box::new(Echo {
            last: 0xff,
            selected: false,
        }));
        let mut env = Environment::default();
        let (rx, tx) = bus.transfer(&[1, 2, 3], &mut env).unwrap();
        assert_eq!(rx, vec![0xff, 1, 2]);
        assert_eq!(tx.bytes, 3);
        // 24 bits at 1 MHz = 24 µs.
        assert_eq!(tx.duration, SimDuration::from_micros(24));
    }

    #[test]
    fn transfer_without_device_is_none() {
        let mut bus = SpiBus::new();
        let mut env = Environment::default();
        assert!(bus.transfer(&[0], &mut env).is_none());
    }

    #[test]
    fn attach_detach_cycle() {
        let mut bus = SpiBus::new();
        assert!(!bus.connected());
        bus.attach(Box::new(Echo {
            last: 0,
            selected: false,
        }));
        assert!(bus.connected());
        assert!(bus.detach());
        assert!(!bus.detach());
    }
}
