//! I²C bus controller model.
//!
//! Transaction-level simulation of a 100 kHz two-wire bus with 7-bit
//! addressing and register semantics (write a register pointer, read N
//! bytes) — the protocol the BMP180 speaks. Timing counts 9 clocks per byte
//! (8 data + ACK) plus start/stop overhead; energy charges the MCU active
//! current for the bus time.

use std::collections::HashMap;

use upnp_sim::SimDuration;

use crate::BusTransaction;

/// A slave device on the bus.
///
/// `Send` so boxed devices can live inside Things that migrate to shard
/// worker threads.
pub trait I2cDevice: Send {
    /// Handles a master write of `data` (typically a register pointer,
    /// optionally followed by values).
    fn write(&mut self, data: &[u8], env: &mut crate::Environment);

    /// Handles a master read of `len` bytes from the current register
    /// pointer.
    fn read(&mut self, len: usize, env: &mut crate::Environment) -> Vec<u8>;
}

/// I²C failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum I2cError {
    /// No device acknowledged the address.
    AddressNack,
    /// Attempted transfer of zero bytes.
    EmptyTransfer,
}

impl std::fmt::Display for I2cError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            I2cError::AddressNack => write!(f, "address not acknowledged"),
            I2cError::EmptyTransfer => write!(f, "empty transfer"),
        }
    }
}

impl std::error::Error for I2cError {}

/// The MCU-side I²C master with its attached slaves.
pub struct I2cBus {
    /// Bus clock in hertz (standard mode: 100 kHz).
    pub clock_hz: u64,
    devices: HashMap<u8, Box<dyn I2cDevice>>,
}

impl Default for I2cBus {
    fn default() -> Self {
        Self::new()
    }
}

impl I2cBus {
    /// Creates a standard-mode (100 kHz) bus with no devices.
    pub fn new() -> Self {
        I2cBus {
            clock_hz: 100_000,
            devices: HashMap::new(),
        }
    }

    /// Attaches a slave at `address` (7-bit).
    ///
    /// # Panics
    ///
    /// Panics if the address is already taken or not 7-bit.
    pub fn attach(&mut self, address: u8, device: Box<dyn I2cDevice>) {
        assert!(address <= 0x7f, "address {address:#x} not 7-bit");
        let prev = self.devices.insert(address, device);
        assert!(prev.is_none(), "address {address:#x} already attached");
    }

    /// Detaches the slave at `address`, if any.
    pub fn detach(&mut self, address: u8) -> bool {
        self.devices.remove(&address).is_some()
    }

    /// True if a device answers at `address`.
    pub fn probe(&self, address: u8) -> bool {
        self.devices.contains_key(&address)
    }

    /// Wire time for a transfer of `bytes` payload bytes: start + address
    /// byte + payload (9 clocks each) + stop.
    fn transfer_time(&self, bytes: usize) -> SimDuration {
        let clocks = 1 + 9 * (1 + bytes as u64) + 1;
        SimDuration::from_nanos(clocks * 1_000_000_000 / self.clock_hz)
    }

    fn transaction(&self, bytes: usize) -> BusTransaction {
        let duration = self.transfer_time(bytes);
        BusTransaction {
            duration,
            energy_j: duration.as_secs_f64() * 3.3 * 4.1e-3,
            bytes,
        }
    }

    /// Master write.
    ///
    /// # Errors
    ///
    /// [`I2cError::AddressNack`] if nothing answers;
    /// [`I2cError::EmptyTransfer`] for empty payloads.
    pub fn write(
        &mut self,
        address: u8,
        data: &[u8],
        env: &mut crate::Environment,
    ) -> Result<BusTransaction, I2cError> {
        if data.is_empty() {
            return Err(I2cError::EmptyTransfer);
        }
        let dev = self
            .devices
            .get_mut(&address)
            .ok_or(I2cError::AddressNack)?;
        dev.write(data, env);
        Ok(self.transaction(data.len()))
    }

    /// Master read of `len` bytes.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`I2cBus::write`].
    pub fn read(
        &mut self,
        address: u8,
        len: usize,
        env: &mut crate::Environment,
    ) -> Result<(Vec<u8>, BusTransaction), I2cError> {
        if len == 0 {
            return Err(I2cError::EmptyTransfer);
        }
        let dev = self
            .devices
            .get_mut(&address)
            .ok_or(I2cError::AddressNack)?;
        let data = dev.read(len, env);
        debug_assert_eq!(data.len(), len, "device returned wrong length");
        let tx = self.transaction(len);
        Ok((data, tx))
    }

    /// The common write-register-then-read idiom (repeated start).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`I2cBus::write`].
    pub fn write_read(
        &mut self,
        address: u8,
        reg: u8,
        len: usize,
        env: &mut crate::Environment,
    ) -> Result<(Vec<u8>, BusTransaction), I2cError> {
        let w = self.write(address, &[reg], env)?;
        let (data, r) = self.read(address, len, env)?;
        Ok((data, w.then(r)))
    }
}

impl std::fmt::Debug for I2cBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut addrs: Vec<u8> = self.devices.keys().copied().collect();
        addrs.sort_unstable();
        f.debug_struct("I2cBus")
            .field("clock_hz", &self.clock_hz)
            .field("devices", &addrs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    /// A 4-register scratch device.
    struct Scratch {
        regs: [u8; 4],
        ptr: usize,
    }

    impl Scratch {
        fn new() -> Self {
            Scratch {
                regs: [0xa0, 0xa1, 0xa2, 0xa3],
                ptr: 0,
            }
        }
    }

    impl I2cDevice for Scratch {
        fn write(&mut self, data: &[u8], _env: &mut Environment) {
            self.ptr = data[0] as usize % 4;
            for (i, &v) in data[1..].iter().enumerate() {
                self.regs[(self.ptr + i) % 4] = v;
            }
        }

        fn read(&mut self, len: usize, _env: &mut Environment) -> Vec<u8> {
            (0..len).map(|i| self.regs[(self.ptr + i) % 4]).collect()
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut bus = I2cBus::new();
        bus.attach(0x42, Box::new(Scratch::new()));
        let mut env = Environment::default();
        bus.write(0x42, &[0x01, 0xbe, 0xef], &mut env).unwrap();
        let (data, _) = bus.write_read(0x42, 0x01, 2, &mut env).unwrap();
        assert_eq!(data, vec![0xbe, 0xef]);
    }

    #[test]
    fn missing_device_nacks() {
        let mut bus = I2cBus::new();
        let mut env = Environment::default();
        assert_eq!(
            bus.write(0x10, &[0], &mut env).unwrap_err(),
            I2cError::AddressNack
        );
        assert_eq!(
            bus.read(0x10, 1, &mut env).unwrap_err(),
            I2cError::AddressNack
        );
        assert!(!bus.probe(0x10));
    }

    #[test]
    fn empty_transfers_rejected() {
        let mut bus = I2cBus::new();
        bus.attach(0x42, Box::new(Scratch::new()));
        let mut env = Environment::default();
        assert_eq!(
            bus.write(0x42, &[], &mut env).unwrap_err(),
            I2cError::EmptyTransfer
        );
        assert_eq!(
            bus.read(0x42, 0, &mut env).unwrap_err(),
            I2cError::EmptyTransfer
        );
    }

    #[test]
    fn timing_scales_with_bytes() {
        let bus = I2cBus::new();
        // 1 payload byte: 1 + 9×2 + 1 = 20 clocks at 100 kHz = 200 µs.
        assert_eq!(bus.transfer_time(1), SimDuration::from_micros(200));
        // Each extra byte adds 9 clocks = 90 µs.
        assert_eq!(bus.transfer_time(2), SimDuration::from_micros(290));
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn duplicate_address_panics() {
        let mut bus = I2cBus::new();
        bus.attach(0x42, Box::new(Scratch::new()));
        bus.attach(0x42, Box::new(Scratch::new()));
    }

    #[test]
    fn detach_frees_address() {
        let mut bus = I2cBus::new();
        bus.attach(0x42, Box::new(Scratch::new()));
        assert!(bus.detach(0x42));
        assert!(!bus.detach(0x42));
        bus.attach(0x42, Box::new(Scratch::new()));
    }
}
