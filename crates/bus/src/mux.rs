//! The µPnP connector pin multiplexer (paper §3.1, Table 1).
//!
//! After identification, the control board switches the connector's
//! communication pins (10–12) to the bus the identified peripheral speaks.
//! The mapping from device-type to bus is carried by the driver metadata;
//! this module models the switch itself and enforces that a channel is
//! routed to exactly one bus at a time.

use std::fmt;

/// Which bus a channel's communication pins are switched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusSelect {
    /// Pins floating; the state before identification completes.
    Disconnected,
    /// Pin 10 = analog signal.
    Adc,
    /// Pin 10 = SDA, pin 11 = SCL.
    I2c,
    /// Pin 10 = MOSI, pin 11 = MISO, pin 12 = SCK.
    Spi,
    /// Pin 10 = TX, pin 11 = RX.
    Uart,
}

impl fmt::Display for BusSelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusSelect::Disconnected => "disconnected",
            BusSelect::Adc => "ADC",
            BusSelect::I2c => "I2C",
            BusSelect::Spi => "SPI",
            BusSelect::Uart => "UART",
        };
        write!(f, "{s}")
    }
}

/// The per-channel bus switch on the control board.
#[derive(Debug, Clone)]
pub struct PinMux {
    routes: Vec<BusSelect>,
    switches: u64,
}

impl PinMux {
    /// Creates a mux for `channels` channels, all disconnected.
    pub fn new(channels: usize) -> Self {
        PinMux {
            routes: vec![BusSelect::Disconnected; channels],
            switches: 0,
        }
    }

    /// The current routing of `channel`.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist.
    pub fn route(&self, channel: usize) -> BusSelect {
        self.routes[channel]
    }

    /// Switches `channel` to `bus`, returning the previous routing.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist.
    pub fn switch(&mut self, channel: usize, bus: BusSelect) -> BusSelect {
        let prev = std::mem::replace(&mut self.routes[channel], bus);
        if prev != bus {
            self.switches += 1;
        }
        prev
    }

    /// Disconnects `channel` (on unplug).
    pub fn disconnect(&mut self, channel: usize) {
        self.switch(channel, BusSelect::Disconnected);
    }

    /// Total number of actual switch operations (diagnostic).
    pub fn switch_count(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_disconnected() {
        let mux = PinMux::new(3);
        for ch in 0..3 {
            assert_eq!(mux.route(ch), BusSelect::Disconnected);
        }
    }

    #[test]
    fn switch_and_disconnect() {
        let mut mux = PinMux::new(3);
        assert_eq!(mux.switch(1, BusSelect::I2c), BusSelect::Disconnected);
        assert_eq!(mux.route(1), BusSelect::I2c);
        mux.disconnect(1);
        assert_eq!(mux.route(1), BusSelect::Disconnected);
        assert_eq!(mux.switch_count(), 2);
    }

    #[test]
    fn redundant_switches_do_not_count() {
        let mut mux = PinMux::new(1);
        mux.switch(0, BusSelect::Uart);
        mux.switch(0, BusSelect::Uart);
        assert_eq!(mux.switch_count(), 1);
    }

    #[test]
    #[should_panic]
    fn bad_channel_panics() {
        PinMux::new(2).route(5);
    }

    #[test]
    fn display_names() {
        assert_eq!(BusSelect::Adc.to_string(), "ADC");
        assert_eq!(BusSelect::Disconnected.to_string(), "disconnected");
    }
}
