//! The physical environment observed by simulated peripherals.
//!
//! A single [`Environment`] value is shared by every peripheral model on a
//! Thing; examples and experiments script it (set a temperature profile,
//! present an RFID card) and the sensors observe it through their own
//! transfer functions and noise.

use std::collections::VecDeque;

/// Ground-truth physical conditions around one IoT device.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Ambient temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Relative humidity in percent (0–100).
    pub humidity_rh: f64,
    /// Barometric pressure in pascals.
    pub pressure_pa: f64,
    /// RFID cards currently presented to a reader, oldest first. Each card
    /// is a 10-character ASCII-hex identifier (ID-20LA format).
    cards: VecDeque<[u8; 10]>,
}

impl Default for Environment {
    /// Standard lab conditions: 25 °C, 45 % RH, 101 325 Pa.
    fn default() -> Self {
        Environment {
            temperature_c: 25.0,
            humidity_rh: 45.0,
            pressure_pa: 101_325.0,
            cards: VecDeque::new(),
        }
    }
}

impl Environment {
    /// Creates an environment with explicit conditions.
    ///
    /// # Panics
    ///
    /// Panics if humidity is outside 0–100 % or pressure is non-positive.
    pub fn new(temperature_c: f64, humidity_rh: f64, pressure_pa: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&humidity_rh),
            "humidity {humidity_rh} out of range"
        );
        assert!(pressure_pa > 0.0, "non-positive pressure");
        Environment {
            temperature_c,
            humidity_rh,
            pressure_pa,
            cards: VecDeque::new(),
        }
    }

    /// Presents an RFID card to the reader.
    ///
    /// # Panics
    ///
    /// Panics unless the identifier is exactly 10 ASCII-hex characters.
    pub fn present_card(&mut self, id: &str) {
        assert_eq!(id.len(), 10, "card id must be 10 hex characters");
        assert!(
            id.bytes().all(|b| b.is_ascii_hexdigit()),
            "card id must be hex"
        );
        let mut card = [0u8; 10];
        card.copy_from_slice(&id.to_ascii_uppercase().into_bytes());
        self.cards.push_back(card);
    }

    /// Removes and returns the oldest presented card, if any.
    pub fn take_card(&mut self) -> Option<[u8; 10]> {
        self.cards.pop_front()
    }

    /// Number of cards currently in the reader's field.
    pub fn cards_waiting(&self) -> usize {
        self.cards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lab_conditions() {
        let e = Environment::default();
        assert_eq!(e.temperature_c, 25.0);
        assert_eq!(e.humidity_rh, 45.0);
        assert_eq!(e.pressure_pa, 101_325.0);
        assert_eq!(e.cards_waiting(), 0);
    }

    #[test]
    fn cards_queue_fifo() {
        let mut e = Environment::default();
        e.present_card("0415AB09CD");
        e.present_card("1122334455");
        assert_eq!(e.cards_waiting(), 2);
        assert_eq!(&e.take_card().unwrap(), b"0415AB09CD");
        assert_eq!(&e.take_card().unwrap(), b"1122334455");
        assert!(e.take_card().is_none());
    }

    #[test]
    fn card_ids_are_uppercased() {
        let mut e = Environment::default();
        e.present_card("04ab15ff00");
        assert_eq!(&e.take_card().unwrap(), b"04AB15FF00");
    }

    #[test]
    #[should_panic(expected = "10 hex characters")]
    fn short_card_panics() {
        Environment::default().present_card("123");
    }

    #[test]
    #[should_panic(expected = "must be hex")]
    fn non_hex_card_panics() {
        Environment::default().present_card("01234567ZZ");
    }

    #[test]
    #[should_panic(expected = "humidity")]
    fn bad_humidity_panics() {
        Environment::new(25.0, 150.0, 101_325.0);
    }
}
