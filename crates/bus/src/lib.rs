//! Simulated embedded interconnects and datasheet peripheral models.
//!
//! The paper's prototype connects four Grove peripherals to the MCU over
//! three bus families (§6): the TMP36 and HIH-4030 over ADC, the ID-20LA
//! RFID reader over UART and the BMP180 over I²C (SPI is supported by the
//! µPnP connector but unused by the prototypes). This crate simulates those
//! buses at transaction level — with datasheet-derived timing and energy —
//! and models the peripherals behaviourally, faithful enough that the *real
//! driver logic* (including the BMP180's integer compensation pipeline) runs
//! unmodified on top.
//!
//! Layering:
//!
//! * [`mod@env`] — the physical world the sensors observe (temperature,
//!   humidity, pressure, RFID cards in range);
//! * [`adc`], [`uart`], [`i2c`], [`spi`] — bus controllers that execute
//!   transactions against peripheral models and report
//!   [`BusTransaction`] timing/energy;
//! * [`peripherals`] — TMP36, HIH-4030, ID-20LA and BMP180 models;
//! * [`mux`] — the µPnP connector pin multiplexer (Table 1).

pub mod adc;
pub mod env;
pub mod i2c;
pub mod mux;
pub mod peripherals;
pub mod spi;
pub mod uart;

pub use adc::{Adc, AdcReading, AnalogSource};
pub use env::Environment;
pub use i2c::{I2cBus, I2cDevice, I2cError};
pub use mux::{BusSelect, PinMux};
pub use spi::{SpiBus, SpiDevice, SpiMode};
pub use uart::{Uart, UartConfig, UartDevice, UartError, UartFrameFormat};

use upnp_sim::SimDuration;

/// Timing and energy accounting for one bus transaction.
///
/// Every bus operation in the simulation returns one of these so that
/// callers (the VM's native libraries, the energy models) can charge time
/// and joules without knowing bus internals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusTransaction {
    /// How long the transaction occupied the bus.
    pub duration: SimDuration,
    /// Energy consumed by bus logic plus the MCU servicing it, joules.
    pub energy_j: f64,
    /// Payload bytes moved (diagnostic).
    pub bytes: usize,
}

impl BusTransaction {
    /// Combines two sequential transactions.
    pub fn then(self, next: BusTransaction) -> BusTransaction {
        BusTransaction {
            duration: self.duration + next.duration,
            energy_j: self.energy_j + next.energy_j,
            bytes: self.bytes + next.bytes,
        }
    }
}
