//! BMP180 digital barometric pressure sensor (Bosch Sensortec).
//!
//! The most involved peripheral model: the real part exposes factory
//! calibration coefficients over I²C and returns *uncompensated* readings
//! (UT, UP) that the host driver must run through a documented integer
//! pipeline. The paper's 122-SLoC DSL driver implements that pipeline, so
//! the model must produce UT/UP values that are **consistent** with its
//! calibration EEPROM and the simulated environment.
//!
//! * [`compensate_temperature`] / [`compensate_pressure`] implement the
//!   datasheet algorithm exactly (validated against the datasheet's worked
//!   example: UT = 27898, UP = 23843 → 15.0 °C, 69964 Pa).
//! * The device model *inverts* that pipeline (analytically for UT, by
//!   bisection for UP) so a driver reading the device recovers the
//!   environment's true temperature and pressure.

use upnp_sim::{SimDuration, SimRng};

use crate::i2c::I2cDevice;
use crate::Environment;

/// The BMP180's fixed I²C address.
pub const BMP180_I2C_ADDR: u8 = 0x77;

/// Register map constants.
const REG_CALIB_START: u8 = 0xaa;
const REG_CHIP_ID: u8 = 0xd0;
const REG_CTRL_MEAS: u8 = 0xf4;
const REG_OUT_MSB: u8 = 0xf6;
const CHIP_ID: u8 = 0x55;
const CMD_TEMPERATURE: u8 = 0x2e;
const CMD_PRESSURE_BASE: u8 = 0x34;

/// The 11 factory calibration coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    pub ac1: i16,
    pub ac2: i16,
    pub ac3: i16,
    pub ac4: u16,
    pub ac5: u16,
    pub ac6: u16,
    pub b1: i16,
    pub b2: i16,
    pub mb: i16,
    pub mc: i16,
    pub md: i16,
}

impl Calibration {
    /// The datasheet's worked-example coefficient set.
    pub const DATASHEET_EXAMPLE: Calibration = Calibration {
        ac1: 408,
        ac2: -72,
        ac3: -14383,
        ac4: 32741,
        ac5: 32757,
        ac6: 23153,
        b1: 6190,
        b2: 4,
        mb: -32768,
        mc: -8711,
        md: 2868,
    };

    /// Serialises the coefficients into the 22-byte EEPROM image
    /// (big-endian, register order AC1..MD).
    pub fn to_eeprom(&self) -> [u8; 22] {
        let mut out = [0u8; 22];
        let words: [u16; 11] = [
            self.ac1 as u16,
            self.ac2 as u16,
            self.ac3 as u16,
            self.ac4,
            self.ac5,
            self.ac6,
            self.b1 as u16,
            self.b2 as u16,
            self.mb as u16,
            self.mc as u16,
            self.md as u16,
        ];
        for (i, w) in words.iter().enumerate() {
            out[2 * i] = (w >> 8) as u8;
            out[2 * i + 1] = (w & 0xff) as u8;
        }
        out
    }
}

/// Datasheet temperature compensation: `(UT, calib) → (T in 0.1 °C, B5)`.
///
/// B5 is the intermediate the pressure pipeline reuses.
pub fn compensate_temperature(ut: i64, c: &Calibration) -> (i64, i64) {
    let x1 = ((ut - c.ac6 as i64) * c.ac5 as i64) >> 15;
    let x2 = ((c.mc as i64) << 11) / (x1 + c.md as i64);
    let b5 = x1 + x2;
    let t = (b5 + 8) >> 4;
    (t, b5)
}

/// Datasheet pressure compensation: `(UP, B5, oss, calib) → pressure in Pa`.
pub fn compensate_pressure(up: i64, b5: i64, oss: u8, c: &Calibration) -> i64 {
    let b6 = b5 - 4000;
    let x1 = (c.b2 as i64 * ((b6 * b6) >> 12)) >> 11;
    let x2 = (c.ac2 as i64 * b6) >> 11;
    let x3 = x1 + x2;
    let b3 = ((((c.ac1 as i64) * 4 + x3) << oss) + 2) >> 2;
    let x1 = (c.ac3 as i64 * b6) >> 13;
    let x2 = (c.b1 as i64 * ((b6 * b6) >> 12)) >> 16;
    let x3 = ((x1 + x2) + 2) >> 2;
    let b4 = ((c.ac4 as i64) * (x3 + 32768)) >> 15;
    let b7 = (up - b3) * (50_000 >> oss);
    let p = if b7 < 0x8000_0000 {
        (b7 * 2) / b4
    } else {
        (b7 / b4) * 2
    };
    let x1 = (p >> 8) * (p >> 8);
    let x1 = (x1 * 3038) >> 16;
    let x2 = (-7357 * p) >> 16;
    p + ((x1 + x2 + 3791) >> 4)
}

/// Inverts the temperature pipeline: finds UT whose compensated output is
/// the target temperature (0.1 °C resolution).
fn invert_temperature(target_deci_c: i64, c: &Calibration) -> i64 {
    // Solve x1 + (mc<<11)/(x1+md) = b5 for the b5 hitting the target,
    // then refine ±4 counts against the exact integer pipeline.
    let b5_target = (target_deci_c << 4) - 8;
    let p_md = c.md as f64;
    let q = (c.mc as f64) * 2048.0;
    let b5f = b5_target as f64;
    // x1² + (md − b5)·x1 + (q − b5·md) = 0.
    let half = (b5f - p_md) / 2.0;
    let disc = half * half - (q - b5f * p_md);
    let x1 = half + disc.max(0.0).sqrt();
    let ut_guess = ((x1 * 32768.0) / c.ac5 as f64) + c.ac6 as f64;
    let mut best = ut_guess as i64;
    let mut best_err = i64::MAX;
    for cand in (ut_guess as i64 - 8)..=(ut_guess as i64 + 8) {
        let (t, _) = compensate_temperature(cand, c);
        let err = (t - target_deci_c).abs();
        if err < best_err {
            best_err = err;
            best = cand;
        }
    }
    best
}

/// Inverts the pressure pipeline by bisection (monotone in UP).
fn invert_pressure(target_pa: i64, b5: i64, oss: u8, c: &Calibration) -> i64 {
    let (mut lo, mut hi) = (0i64, ((1i64 << 16) - 1) << oss);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if compensate_pressure(mid, b5, oss, c) < target_pa {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A BMP180 on the I²C bus.
pub struct Bmp180 {
    calib: Calibration,
    reg_ptr: u8,
    out: [u8; 3],
    oss: u8,
    rng: SimRng,
    /// UT noise in counts (RMS).
    ut_noise: f64,
    /// UP noise in counts (RMS).
    up_noise: f64,
    conversions: u64,
}

impl Bmp180 {
    /// Creates a part with the datasheet example calibration.
    pub fn new(seed: u64) -> Self {
        Bmp180 {
            calib: Calibration::DATASHEET_EXAMPLE,
            reg_ptr: 0,
            out: [0; 3],
            oss: 0,
            rng: SimRng::seed(seed),
            ut_noise: 1.5,
            up_noise: 2.0,
            conversions: 0,
        }
    }

    /// A noiseless part (round-trip accuracy tests).
    pub fn noiseless(seed: u64) -> Self {
        let mut dev = Self::new(seed);
        dev.ut_noise = 0.0;
        dev.up_noise = 0.0;
        dev
    }

    /// The part's calibration (what the EEPROM holds).
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Datasheet conversion time for the given command.
    pub fn conversion_time(cmd: u8) -> SimDuration {
        if cmd == CMD_TEMPERATURE {
            SimDuration::from_micros(4_500)
        } else {
            match cmd >> 6 {
                0 => SimDuration::from_micros(4_500),
                1 => SimDuration::from_micros(7_500),
                2 => SimDuration::from_micros(13_500),
                _ => SimDuration::from_micros(25_500),
            }
        }
    }

    /// Total conversions triggered (diagnostic).
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    fn run_command(&mut self, cmd: u8, env: &Environment) {
        self.conversions += 1;
        if cmd == CMD_TEMPERATURE {
            let target = (env.temperature_c * 10.0).round() as i64;
            let ut = invert_temperature(target, &self.calib)
                + self.rng.gaussian(self.ut_noise).round() as i64;
            self.out = [((ut >> 8) & 0xff) as u8, (ut & 0xff) as u8, 0];
        } else if cmd & 0x3f == CMD_PRESSURE_BASE {
            self.oss = cmd >> 6;
            // The device's own temperature state (noise-free) provides B5.
            let t_target = (env.temperature_c * 10.0).round() as i64;
            let ut = invert_temperature(t_target, &self.calib);
            let (_, b5) = compensate_temperature(ut, &self.calib);
            let up = invert_pressure(env.pressure_pa.round() as i64, b5, self.oss, &self.calib)
                + self.rng.gaussian(self.up_noise).round() as i64;
            let raw24 = (up.max(0) as u32) << (8 - self.oss);
            self.out = [
                ((raw24 >> 16) & 0xff) as u8,
                ((raw24 >> 8) & 0xff) as u8,
                (raw24 & 0xff) as u8,
            ];
        }
    }

    fn register(&self, addr: u8) -> u8 {
        match addr {
            REG_CALIB_START..=0xbf => self.calib.to_eeprom()[(addr - REG_CALIB_START) as usize],
            REG_CHIP_ID => CHIP_ID,
            REG_CTRL_MEAS => 0,
            a if (REG_OUT_MSB..REG_OUT_MSB + 3).contains(&a) => {
                self.out[(a - REG_OUT_MSB) as usize]
            }
            _ => 0,
        }
    }
}

impl I2cDevice for Bmp180 {
    fn write(&mut self, data: &[u8], env: &mut Environment) {
        self.reg_ptr = data[0];
        if data.len() >= 2 && data[0] == REG_CTRL_MEAS {
            self.run_command(data[1], env);
        }
    }

    fn read(&mut self, len: usize, _env: &mut Environment) -> Vec<u8> {
        (0..len)
            .map(|i| self.register(self.reg_ptr.wrapping_add(i as u8)))
            .collect()
    }
}

impl std::fmt::Debug for Bmp180 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bmp180")
            .field("oss", &self.oss)
            .field("conversions", &self.conversions)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasheet_worked_example() {
        // BMP180 datasheet §3.5: UT = 27898, UP = 23843, oss = 0 with the
        // example coefficients give T = 150 (15.0 °C), p = 69964 Pa.
        let c = Calibration::DATASHEET_EXAMPLE;
        let (t, b5) = compensate_temperature(27898, &c);
        assert_eq!(t, 150);
        let p = compensate_pressure(23843, b5, 0, &c);
        assert_eq!(p, 69_964);
    }

    #[test]
    fn eeprom_serialisation_roundtrips() {
        let img = Calibration::DATASHEET_EXAMPLE.to_eeprom();
        assert_eq!(img.len(), 22);
        // AC1 = 408 = 0x0198.
        assert_eq!(img[0], 0x01);
        assert_eq!(img[1], 0x98);
        // MD = 2868 = 0x0B34 at the end.
        assert_eq!(img[20], 0x0b);
        assert_eq!(img[21], 0x34);
    }

    #[test]
    fn temperature_inversion_is_exact() {
        let c = Calibration::DATASHEET_EXAMPLE;
        for deci in [-100i64, 0, 150, 250, 312, 450] {
            let ut = invert_temperature(deci, &c);
            let (t, _) = compensate_temperature(ut, &c);
            assert!((t - deci).abs() <= 1, "target {deci}: got {t}");
        }
    }

    #[test]
    fn pressure_inversion_is_close() {
        let c = Calibration::DATASHEET_EXAMPLE;
        let (_, b5) = compensate_temperature(invert_temperature(250, &c), &c);
        for target in [70_000i64, 95_000, 101_325, 105_000] {
            for oss in 0..=3u8 {
                let up = invert_pressure(target, b5, oss, &c);
                let p = compensate_pressure(up, b5, oss, &c);
                assert!(
                    (p - target).abs() <= 8,
                    "oss {oss} target {target}: got {p}"
                );
            }
        }
    }

    #[test]
    fn full_i2c_roundtrip_recovers_environment() {
        // Drive the device exactly as a driver would.
        let mut dev = Bmp180::noiseless(7);
        let mut env = Environment::new(22.5, 40.0, 99_800.0);

        // Read calibration EEPROM.
        dev.write(&[REG_CALIB_START], &mut env);
        let eeprom = dev.read(22, &mut env);
        assert_eq!(eeprom, Calibration::DATASHEET_EXAMPLE.to_eeprom().to_vec());

        // Temperature conversion.
        dev.write(&[REG_CTRL_MEAS, CMD_TEMPERATURE], &mut env);
        dev.write(&[REG_OUT_MSB], &mut env);
        let raw = dev.read(2, &mut env);
        let ut = ((raw[0] as i64) << 8) | raw[1] as i64;
        let (t, b5) = compensate_temperature(ut, dev.calibration());
        assert!((t - 225).abs() <= 1, "temperature {t} deci-C");

        // Pressure conversion at oss=0.
        dev.write(&[REG_CTRL_MEAS, CMD_PRESSURE_BASE], &mut env);
        dev.write(&[REG_OUT_MSB], &mut env);
        let raw = dev.read(3, &mut env);
        let up = (((raw[0] as i64) << 16) | ((raw[1] as i64) << 8) | raw[2] as i64) >> 8;
        let p = compensate_pressure(up, b5, 0, dev.calibration());
        assert!((p - 99_800).abs() <= 10, "pressure {p} Pa");
    }

    #[test]
    fn oversampling_modes_shift_raw_value() {
        let mut dev = Bmp180::noiseless(8);
        let mut env = Environment::default();
        for oss in 0..=3u8 {
            let cmd = CMD_PRESSURE_BASE | (oss << 6);
            dev.write(&[REG_CTRL_MEAS, cmd], &mut env);
            dev.write(&[REG_OUT_MSB], &mut env);
            let raw = dev.read(3, &mut env);
            let up =
                (((raw[0] as i64) << 16) | ((raw[1] as i64) << 8) | raw[2] as i64) >> (8 - oss);
            let (_, b5) = compensate_temperature(
                invert_temperature(250, dev.calibration()),
                dev.calibration(),
            );
            let p = compensate_pressure(up, b5, oss, dev.calibration());
            assert!((p - 101_325).abs() <= 10, "oss {oss}: {p} Pa");
        }
    }

    #[test]
    fn conversion_times_match_datasheet() {
        assert_eq!(
            Bmp180::conversion_time(CMD_TEMPERATURE),
            SimDuration::from_micros(4_500)
        );
        assert_eq!(
            Bmp180::conversion_time(CMD_PRESSURE_BASE),
            SimDuration::from_micros(4_500)
        );
        assert_eq!(
            Bmp180::conversion_time(CMD_PRESSURE_BASE | (3 << 6)),
            SimDuration::from_micros(25_500)
        );
    }

    #[test]
    fn chip_id_reads_0x55() {
        let mut dev = Bmp180::new(9);
        let mut env = Environment::default();
        dev.write(&[REG_CHIP_ID], &mut env);
        assert_eq!(dev.read(1, &mut env), vec![0x55]);
    }

    #[test]
    fn noisy_device_still_accurate_to_datasheet_spec() {
        // ±0.5 °C / ±50 Pa absolute accuracy is the datasheet class; our
        // noise model must stay comfortably inside it.
        let mut dev = Bmp180::new(10);
        let mut env = Environment::new(25.0, 45.0, 101_325.0);
        for _ in 0..20 {
            dev.write(&[REG_CTRL_MEAS, CMD_TEMPERATURE], &mut env);
            dev.write(&[REG_OUT_MSB], &mut env);
            let raw = dev.read(2, &mut env);
            let ut = ((raw[0] as i64) << 8) | raw[1] as i64;
            let (t, b5) = compensate_temperature(ut, dev.calibration());
            assert!((t - 250).abs() <= 5, "temperature {t}");

            dev.write(&[REG_CTRL_MEAS, CMD_PRESSURE_BASE], &mut env);
            dev.write(&[REG_OUT_MSB], &mut env);
            let raw = dev.read(3, &mut env);
            let up = (((raw[0] as i64) << 16) | ((raw[1] as i64) << 8) | raw[2] as i64) >> 8;
            let p = compensate_pressure(up, b5, 0, dev.calibration());
            assert!((p - 101_325).abs() <= 50, "pressure {p}");
        }
    }
}
