//! HIH-4030 analog relative-humidity sensor (Honeywell).
//!
//! Datasheet transfer function (ratiometric to the supply):
//! `Vout = Vsupply · (0.0062 · RH_sensor + 0.16)`, where the *sensor*
//! humidity relates to true humidity through the temperature correction
//! `RH_true = RH_sensor / (1.0546 − 0.00216 · T)`. The µPnP DSL driver
//! inverts both stages in software — which is what makes its line count
//! larger than the TMP36 driver's in Table 3.

use upnp_sim::SimRng;

use crate::adc::AnalogSource;
use crate::Environment;

/// An HIH-4030 on an ADC channel.
#[derive(Debug, Clone)]
pub struct Hih4030 {
    /// Supply voltage (the part is ratiometric), volts.
    pub supply_v: f64,
    /// Per-part gain error (datasheet: ±3.5 % RH accuracy).
    pub gain_error: f64,
}

impl Default for Hih4030 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hih4030 {
    /// An ideal part on the 3.3 V rail.
    pub fn new() -> Self {
        Hih4030 {
            supply_v: 3.3,
            gain_error: 0.0,
        }
    }

    /// Samples a part with a realistic ±2 % gain error.
    pub fn sample_part(rng: &mut SimRng) -> Self {
        Hih4030 {
            supply_v: 3.3,
            gain_error: rng.tolerance(0.02),
        }
    }

    /// The temperature correction factor `1.0546 − 0.00216·T`.
    pub fn temp_factor(temp_c: f64) -> f64 {
        1.0546 - 0.00216 * temp_c
    }

    /// Datasheet transfer: sensor RH (%) → output voltage.
    pub fn transfer(&self, rh_sensor: f64) -> f64 {
        self.supply_v * (0.0062 * rh_sensor + 0.16)
    }
}

impl AnalogSource for Hih4030 {
    fn voltage(&self, env: &Environment, _rng: &mut SimRng) -> f64 {
        // The sensor element reads low when hot: invert the true-RH
        // correction to get what the element itself reports.
        let rh_sensor = env.humidity_rh * Self::temp_factor(env.temperature_c);
        let rh_sensor = rh_sensor.clamp(0.0, 100.0);
        self.transfer(rh_sensor) * (1.0 + self.gain_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_humidity_gives_offset_voltage() {
        let s = Hih4030::new();
        assert!((s.transfer(0.0) - 0.528).abs() < 1e-9);
    }

    #[test]
    fn transfer_slope_matches_datasheet() {
        let s = Hih4030::new();
        let dv = s.transfer(50.0) - s.transfer(40.0);
        assert!((dv - 3.3 * 0.062).abs() < 1e-9);
    }

    #[test]
    fn software_inversion_recovers_true_rh() {
        // What the DSL driver computes: RH_sensor from volts, then the
        // temperature correction. Must round-trip the environment value.
        let s = Hih4030::new();
        let mut rng = SimRng::seed(1);
        let mut env = Environment::default();
        env.temperature_c = 32.0;
        env.humidity_rh = 61.0;
        let v = s.voltage(&env, &mut rng);
        let rh_sensor = (v / 3.3 - 0.16) / 0.0062;
        let rh_true = rh_sensor / Hih4030::temp_factor(32.0);
        assert!((rh_true - 61.0).abs() < 1e-6, "recovered {rh_true}");
    }

    #[test]
    fn output_stays_within_rails() {
        let s = Hih4030::new();
        let mut rng = SimRng::seed(2);
        for rh in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let mut env = Environment::default();
            env.humidity_rh = rh;
            let v = s.voltage(&env, &mut rng);
            assert!(v > 0.0 && v < 3.3, "RH {rh}: {v} V");
        }
    }

    #[test]
    fn gain_error_is_bounded() {
        let mut rng = SimRng::seed(3);
        for _ in 0..200 {
            let s = Hih4030::sample_part(&mut rng);
            assert!(s.gain_error.abs() <= 0.02);
        }
    }
}
