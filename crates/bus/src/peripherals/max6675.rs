//! MAX6675-style SPI thermocouple converter.
//!
//! Not one of the paper's four prototypes — it exists to exercise the SPI
//! pins the µPnP connector reserves (Table 1) and to demonstrate adding a
//! new peripheral family end-to-end. Read protocol: assert CS, clock out
//! 16 bits: `D15 = 0`, `D14..D3` = temperature in 0.25 °C steps,
//! `D2` = open-thermocouple flag, `D1` = device id, `D0` = tri-state.

use crate::spi::SpiDevice;
use crate::Environment;

/// A MAX6675 on the SPI bus.
#[derive(Debug, Clone, Default)]
pub struct Max6675 {
    /// When true the open-thermocouple bit (D2) is set.
    pub thermocouple_open: bool,
    shift: u16,
    bits_out: u8,
}

impl Max6675 {
    /// Creates a converter with an attached thermocouple.
    pub fn new() -> Self {
        Max6675::default()
    }

    /// The 16-bit frame for a given temperature.
    pub fn frame_for(temp_c: f64, open: bool) -> u16 {
        let quarters = (temp_c.clamp(0.0, 1023.75) * 4.0).round() as u16;
        (quarters << 3) | ((open as u16) << 2)
    }

    /// Decodes a frame back to degrees Celsius (what the driver computes).
    pub fn decode(frame: u16) -> f64 {
        ((frame >> 3) & 0x0fff) as f64 * 0.25
    }
}

impl SpiDevice for Max6675 {
    fn select(&mut self) {
        self.bits_out = 0;
    }

    fn transfer(&mut self, _mosi: u8, env: &mut Environment) -> u8 {
        if self.bits_out == 0 {
            self.shift = Self::frame_for(env.temperature_c, self.thermocouple_open);
        }
        let byte = match self.bits_out {
            0 => (self.shift >> 8) as u8,
            _ => (self.shift & 0xff) as u8,
        };
        self.bits_out = self.bits_out.saturating_add(1);
        byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::SpiBus;

    #[test]
    fn frame_encodes_quarter_degrees() {
        let f = Max6675::frame_for(100.25, false);
        assert_eq!(Max6675::decode(f), 100.25);
        assert_eq!(f & 0b111, 0);
    }

    #[test]
    fn open_flag_sets_d2() {
        let f = Max6675::frame_for(25.0, true);
        assert_eq!(f & 0b100, 0b100);
    }

    #[test]
    fn spi_read_recovers_temperature() {
        let mut bus = SpiBus::new();
        bus.attach(Box::new(Max6675::new()));
        let mut env = Environment::default();
        env.temperature_c = 87.5;
        let (rx, tx) = bus.transfer(&[0, 0], &mut env).unwrap();
        let frame = ((rx[0] as u16) << 8) | rx[1] as u16;
        assert_eq!(Max6675::decode(frame), 87.5);
        assert_eq!(tx.bytes, 2);
    }

    #[test]
    fn negative_temperatures_clamp_to_zero() {
        // The MAX6675 cannot report below 0 °C.
        let f = Max6675::frame_for(-10.0, false);
        assert_eq!(Max6675::decode(f), 0.0);
    }
}
