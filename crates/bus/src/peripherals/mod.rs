//! Behavioural models of the paper's prototype peripherals (§6) plus one
//! SPI device used to exercise the fourth bus family.
//!
//! | Model | Bus | Datasheet behaviour reproduced |
//! |---|---|---|
//! | [`Tmp36`] | ADC | 750 mV at 25 °C, 10 mV/°C |
//! | [`Hih4030`] | ADC | ratiometric RH transfer + temperature correction |
//! | [`Id20La`] | UART | 9600 8N1, STX/data/checksum/CR/LF/ETX frames |
//! | [`Bmp180`] | I²C | calibration EEPROM, UT/UP conversions, full integer compensation (inverted) |
//! | [`Max6675`] | SPI | 16-bit thermocouple reads in 0.25 °C steps |

mod bmp180;
mod hih4030;
mod id20la;
mod max6675;
mod tmp36;

pub use bmp180::{
    compensate_pressure, compensate_temperature, Bmp180, Calibration, BMP180_I2C_ADDR,
};
pub use hih4030::Hih4030;
pub use id20la::Id20La;
pub use max6675::Max6675;
pub use tmp36::Tmp36;
