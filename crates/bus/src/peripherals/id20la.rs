//! ID-20LA 125 kHz RFID card reader (ID Innovations).
//!
//! The reader autonomously transmits a 16-byte ASCII frame at 9600 8N1
//! whenever a card enters its field:
//!
//! ```text
//! STX(0x02) | 10 ASCII-hex data chars | 2 ASCII-hex checksum chars
//!          | CR(0x0D) | LF(0x0A) | ETX(0x03)
//! ```
//!
//! The checksum byte is the XOR of the five data bytes (each encoded as two
//! hex characters). Listing 1's driver keeps the 12 payload characters and
//! filters STX/ETX/CR/LF — this model is what that driver runs against.

use crate::uart::UartDevice;
use crate::Environment;

/// Frame control characters.
pub const STX: u8 = 0x02;
/// End-of-text terminator.
pub const ETX: u8 = 0x03;
/// Carriage return.
pub const CR: u8 = 0x0d;
/// Line feed.
pub const LF: u8 = 0x0a;

/// An ID-20LA reader on a UART.
#[derive(Debug, Clone, Default)]
pub struct Id20La {
    frames_sent: u64,
}

impl Id20La {
    /// Creates a reader.
    pub fn new() -> Self {
        Id20La::default()
    }

    /// Number of card frames transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Builds the 16-byte wire frame for a 10-character card id.
    pub fn frame_for(card: &[u8; 10]) -> [u8; 16] {
        let mut frame = [0u8; 16];
        frame[0] = STX;
        frame[1..11].copy_from_slice(card);
        let checksum = Self::checksum(card);
        let hex = |n: u8| {
            if n < 10 {
                b'0' + n
            } else {
                b'A' + n - 10
            }
        };
        frame[11] = hex(checksum >> 4);
        frame[12] = hex(checksum & 0x0f);
        frame[13] = CR;
        frame[14] = LF;
        frame[15] = ETX;
        frame
    }

    /// XOR checksum over the five data bytes encoded by the ten hex chars.
    pub fn checksum(card: &[u8; 10]) -> u8 {
        let nibble = |c: u8| match c {
            b'0'..=b'9' => c - b'0',
            b'A'..=b'F' => c - b'A' + 10,
            b'a'..=b'f' => c - b'a' + 10,
            _ => 0,
        };
        let mut x = 0u8;
        for pair in card.chunks_exact(2) {
            x ^= (nibble(pair[0]) << 4) | nibble(pair[1]);
        }
        x
    }
}

impl UartDevice for Id20La {
    fn poll_tx(&mut self, env: &mut Environment) -> Vec<u8> {
        match env.take_card() {
            Some(card) => {
                self.frames_sent += 1;
                Self::frame_for(&card).to_vec()
            }
            None => Vec::new(),
        }
    }

    fn on_rx(&mut self, _byte: u8) {
        // The reader has no command interface; host bytes are ignored.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout() {
        let frame = Id20La::frame_for(b"0415AB09CD");
        assert_eq!(frame[0], STX);
        assert_eq!(&frame[1..11], b"0415AB09CD");
        assert_eq!(frame[13], CR);
        assert_eq!(frame[14], LF);
        assert_eq!(frame[15], ETX);
    }

    #[test]
    fn checksum_is_xor_of_data_bytes() {
        // 0x04 ^ 0x15 ^ 0xAB ^ 0x09 ^ 0xCD = 0x7E.
        assert_eq!(Id20La::checksum(b"0415AB09CD"), 0x7e);
        let frame = Id20La::frame_for(b"0415AB09CD");
        assert_eq!(&frame[11..13], b"7E");
    }

    #[test]
    fn transmits_one_frame_per_card() {
        let mut dev = Id20La::new();
        let mut env = Environment::default();
        assert!(dev.poll_tx(&mut env).is_empty());
        env.present_card("0415AB09CD");
        env.present_card("1122334455");
        let f1 = dev.poll_tx(&mut env);
        assert_eq!(f1.len(), 16);
        let f2 = dev.poll_tx(&mut env);
        assert_eq!(f2.len(), 16);
        assert_ne!(f1, f2);
        assert!(dev.poll_tx(&mut env).is_empty());
        assert_eq!(dev.frames_sent(), 2);
    }

    #[test]
    fn payload_chars_match_listing1_filter() {
        // The driver keeps everything that is not STX/ETX/CR/LF: exactly 12
        // characters (10 data + 2 checksum).
        let frame = Id20La::frame_for(b"DEADBEEF01");
        let kept: Vec<u8> = frame
            .iter()
            .copied()
            .filter(|&c| !(c == CR || c == LF || c == STX || c == ETX))
            .collect();
        assert_eq!(kept.len(), 12);
        assert_eq!(&kept[..10], b"DEADBEEF01");
    }
}
