//! TMP36 analog temperature sensor (Analog Devices).
//!
//! Datasheet transfer function: 750 mV at 25 °C with a 10 mV/°C slope and a
//! 500 mV offset (`V = 0.5 + 0.01·T`), valid −40…+125 °C. The µPnP DSL
//! driver inverts this in software: `T = (V − 0.5) × 100`.

use upnp_sim::SimRng;

use crate::adc::AnalogSource;
use crate::Environment;

/// A TMP36 on an ADC channel.
#[derive(Debug, Clone, Default)]
pub struct Tmp36 {
    /// Per-part offset error, volts (datasheet: ±2 °C → ±20 mV max).
    pub offset_error_v: f64,
}

impl Tmp36 {
    /// An ideal part with zero offset error.
    pub fn new() -> Self {
        Tmp36 {
            offset_error_v: 0.0,
        }
    }

    /// Samples a part with a realistic ±10 mV (±1 °C) offset error.
    pub fn sample_part(rng: &mut SimRng) -> Self {
        Tmp36 {
            offset_error_v: rng.tolerance(0.010),
        }
    }

    /// The datasheet transfer function.
    pub fn transfer(temp_c: f64) -> f64 {
        0.5 + 0.01 * temp_c
    }
}

impl AnalogSource for Tmp36 {
    fn voltage(&self, env: &Environment, _rng: &mut SimRng) -> f64 {
        let t = env.temperature_c.clamp(-40.0, 125.0);
        Self::transfer(t) + self.offset_error_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasheet_points() {
        // 25 °C → 750 mV; 0 °C → 500 mV; 100 °C → 1.5 V.
        assert!((Tmp36::transfer(25.0) - 0.75).abs() < 1e-12);
        assert!((Tmp36::transfer(0.0) - 0.50).abs() < 1e-12);
        assert!((Tmp36::transfer(100.0) - 1.50).abs() < 1e-12);
    }

    #[test]
    fn voltage_tracks_environment() {
        let s = Tmp36::new();
        let mut rng = SimRng::seed(1);
        let mut env = Environment::default();
        env.temperature_c = 31.5;
        let v = s.voltage(&env, &mut rng);
        assert!((v - 0.815).abs() < 1e-12);
    }

    #[test]
    fn range_clamps_to_datasheet_limits() {
        let s = Tmp36::new();
        let mut rng = SimRng::seed(2);
        let mut env = Environment::default();
        env.temperature_c = -100.0;
        assert!((s.voltage(&env, &mut rng) - 0.1).abs() < 1e-12);
        env.temperature_c = 200.0;
        assert!((s.voltage(&env, &mut rng) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn part_offset_is_bounded() {
        let mut rng = SimRng::seed(3);
        for _ in 0..200 {
            let s = Tmp36::sample_part(&mut rng);
            assert!(s.offset_error_v.abs() <= 0.010);
        }
    }
}
