//! UART controller model.
//!
//! Byte-level simulation of an asynchronous serial port with the classic
//! frame format parameters (baud rate, parity, stop bits, data bits) —
//! exactly the knobs Listing 1's driver configures
//! (`uart.init(9600, USART_PARITY_NONE, USART_STOP_BITS_1,
//! USART_DATA_BITS_8)`). Timing follows from the frame format; energy
//! charges the MCU for servicing RX interrupts per byte.

use std::collections::VecDeque;

use upnp_sim::SimDuration;

use crate::BusTransaction;

/// Parity setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parity {
    /// No parity bit.
    None,
    /// Even parity.
    Even,
    /// Odd parity.
    Odd,
}

/// Frame format: data bits, parity, stop bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UartFrameFormat {
    /// Data bits per frame (5–9).
    pub data_bits: u8,
    /// Parity setting.
    pub parity: Parity,
    /// Stop bits (1 or 2).
    pub stop_bits: u8,
}

impl UartFrameFormat {
    /// The ubiquitous 8N1 format.
    pub const EIGHT_N_ONE: UartFrameFormat = UartFrameFormat {
        data_bits: 8,
        parity: Parity::None,
        stop_bits: 1,
    };

    /// Total bits on the wire per frame (including the start bit).
    pub fn bits_per_frame(&self) -> u32 {
        let parity = if self.parity == Parity::None { 0 } else { 1 };
        1 + self.data_bits as u32 + parity + self.stop_bits as u32
    }
}

/// Full port configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UartConfig {
    /// Baud rate in bits per second.
    pub baud: u32,
    /// Frame format.
    pub format: UartFrameFormat,
}

impl UartConfig {
    /// 9600 baud 8N1 — the ID-20LA's fixed configuration.
    pub const BAUD_9600_8N1: UartConfig = UartConfig {
        baud: 9600,
        format: UartFrameFormat::EIGHT_N_ONE,
    };

    /// Wire time for one byte.
    pub fn byte_time(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.format.bits_per_frame() as u64 * 1_000_000_000 / self.baud as u64,
        )
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), UartError> {
        let ok_baud = matches!(
            self.baud,
            1200 | 2400 | 4800 | 9600 | 19_200 | 38_400 | 57_600 | 115_200
        );
        let ok_data = (5..=9).contains(&self.format.data_bits);
        let ok_stop = matches!(self.format.stop_bits, 1 | 2);
        if ok_baud && ok_data && ok_stop {
            Ok(())
        } else {
            Err(UartError::InvalidConfiguration)
        }
    }
}

/// UART failure modes surfaced to drivers as error events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UartError {
    /// The requested configuration is unsupported (triggers the DSL's
    /// `invalidConfiguration` error event).
    InvalidConfiguration,
    /// The port is already claimed by another driver (`uartInUse`).
    PortInUse,
    /// The port has not been initialised.
    NotInitialised,
    /// RX FIFO overrun: bytes arrived faster than the driver consumed them.
    Overrun,
}

impl std::fmt::Display for UartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UartError::InvalidConfiguration => "invalid UART configuration",
            UartError::PortInUse => "UART port already in use",
            UartError::NotInitialised => "UART port not initialised",
            UartError::Overrun => "UART RX overrun",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for UartError {}

/// A device on the far end of the UART (e.g. the ID-20LA reader).
///
/// `Send` so boxed devices can live inside Things that migrate to shard
/// worker threads.
pub trait UartDevice: Send {
    /// Called when the environment may have new data for the device to
    /// transmit; returns bytes the device puts on the wire, in order.
    fn poll_tx(&mut self, env: &mut crate::Environment) -> Vec<u8>;

    /// A byte written by the MCU arrives at the device.
    fn on_rx(&mut self, byte: u8);
}

/// The MCU-side UART controller.
///
/// Split-phase by construction: [`Uart::pump`] moves device bytes into the
/// RX FIFO (with wire timing); the native library drains the FIFO and posts
/// one `newdata` event per byte to the owning driver, as §4.1 describes.
#[derive(Debug)]
pub struct Uart {
    config: Option<UartConfig>,
    owner: Option<u32>,
    rx_fifo: VecDeque<u8>,
    rx_capacity: usize,
    overrun: bool,
}

impl Default for Uart {
    fn default() -> Self {
        Self::new()
    }
}

impl Uart {
    /// Creates an unconfigured port with a 64-byte RX FIFO.
    pub fn new() -> Self {
        Uart {
            config: None,
            owner: None,
            rx_fifo: VecDeque::new(),
            rx_capacity: 64,
            overrun: false,
        }
    }

    /// Claims and configures the port for `owner` (a driver slot id).
    ///
    /// # Errors
    ///
    /// [`UartError::PortInUse`] if another owner holds the port;
    /// [`UartError::InvalidConfiguration`] for a bad configuration.
    pub fn init(&mut self, owner: u32, config: UartConfig) -> Result<(), UartError> {
        if let Some(current) = self.owner {
            if current != owner {
                return Err(UartError::PortInUse);
            }
        }
        config.validate()?;
        self.owner = Some(owner);
        self.config = Some(config);
        self.rx_fifo.clear();
        self.overrun = false;
        Ok(())
    }

    /// Releases the port and restores platform defaults (Listing 1's
    /// `uart.reset()`).
    pub fn reset(&mut self) {
        self.config = None;
        self.owner = None;
        self.rx_fifo.clear();
        self.overrun = false;
    }

    /// The active configuration, if initialised.
    pub fn config(&self) -> Option<UartConfig> {
        self.config
    }

    /// True if a driver currently owns the port.
    pub fn in_use(&self) -> bool {
        self.owner.is_some()
    }

    /// Moves pending device bytes onto the RX FIFO, returning the wire
    /// time/energy consumed and how many bytes arrived.
    ///
    /// # Errors
    ///
    /// [`UartError::NotInitialised`] if the port is not configured.
    pub fn pump(
        &mut self,
        device: &mut dyn UartDevice,
        env: &mut crate::Environment,
    ) -> Result<(usize, BusTransaction), UartError> {
        let config = self.config.ok_or(UartError::NotInitialised)?;
        let bytes = device.poll_tx(env);
        let n = bytes.len();
        for b in bytes {
            if self.rx_fifo.len() == self.rx_capacity {
                self.overrun = true;
                break;
            }
            self.rx_fifo.push_back(b);
        }
        let duration = config.byte_time() * n as u64;
        // MCU takes an RX interrupt per byte: ≈100 cycles of handler at
        // 4.1 mA/3.3 V on top of idle-wait (2 mA) for the wire time.
        let energy_j =
            duration.as_secs_f64() * 3.3 * 2.0e-3 + n as f64 * 100.0 / 16e6 * 3.3 * 4.1e-3;
        Ok((
            n,
            BusTransaction {
                duration,
                energy_j,
                bytes: n,
            },
        ))
    }

    /// Writes bytes to the device, returning wire time/energy.
    ///
    /// # Errors
    ///
    /// [`UartError::NotInitialised`] if the port is not configured.
    pub fn write(
        &mut self,
        device: &mut dyn UartDevice,
        data: &[u8],
    ) -> Result<BusTransaction, UartError> {
        let config = self.config.ok_or(UartError::NotInitialised)?;
        for &b in data {
            device.on_rx(b);
        }
        let duration = config.byte_time() * data.len() as u64;
        let energy_j = duration.as_secs_f64() * 3.3 * 4.1e-3;
        Ok(BusTransaction {
            duration,
            energy_j,
            bytes: data.len(),
        })
    }

    /// Pops the next received byte.
    pub fn read_byte(&mut self) -> Option<u8> {
        self.rx_fifo.pop_front()
    }

    /// Number of bytes waiting in the RX FIFO.
    pub fn rx_pending(&self) -> usize {
        self.rx_fifo.len()
    }

    /// Takes the overrun flag (clears it).
    pub fn take_overrun(&mut self) -> bool {
        std::mem::take(&mut self.overrun)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    /// A device that transmits a canned byte sequence once.
    struct Canned(Vec<u8>, Vec<u8>);

    impl Canned {
        fn new(tx: &[u8]) -> Self {
            Canned(tx.to_vec(), Vec::new())
        }
    }

    impl UartDevice for Canned {
        fn poll_tx(&mut self, _env: &mut Environment) -> Vec<u8> {
            std::mem::take(&mut self.0)
        }

        fn on_rx(&mut self, byte: u8) {
            self.1.push(byte);
        }
    }

    #[test]
    fn byte_time_at_9600_8n1_is_about_1ms() {
        let t = UartConfig::BAUD_9600_8N1.byte_time();
        // 10 bits / 9600 baud = 1.0416 ms.
        assert!((t.as_micros_f64() - 1041.666).abs() < 1.0);
    }

    #[test]
    fn frame_bits_count_parity_and_stops() {
        let f = UartFrameFormat {
            data_bits: 8,
            parity: Parity::Even,
            stop_bits: 2,
        };
        assert_eq!(f.bits_per_frame(), 12);
        assert_eq!(UartFrameFormat::EIGHT_N_ONE.bits_per_frame(), 10);
    }

    #[test]
    fn init_claims_port_and_rejects_second_owner() {
        let mut u = Uart::new();
        u.init(1, UartConfig::BAUD_9600_8N1).unwrap();
        assert!(u.in_use());
        assert_eq!(
            u.init(2, UartConfig::BAUD_9600_8N1).unwrap_err(),
            UartError::PortInUse
        );
        // Same owner may reconfigure.
        u.init(1, UartConfig::BAUD_9600_8N1).unwrap();
        u.reset();
        assert!(!u.in_use());
        u.init(2, UartConfig::BAUD_9600_8N1).unwrap();
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut u = Uart::new();
        let bad_baud = UartConfig {
            baud: 1234,
            format: UartFrameFormat::EIGHT_N_ONE,
        };
        assert_eq!(
            u.init(1, bad_baud).unwrap_err(),
            UartError::InvalidConfiguration
        );
        let bad_stop = UartConfig {
            baud: 9600,
            format: UartFrameFormat {
                data_bits: 8,
                parity: Parity::None,
                stop_bits: 3,
            },
        };
        assert_eq!(
            u.init(1, bad_stop).unwrap_err(),
            UartError::InvalidConfiguration
        );
    }

    #[test]
    fn pump_moves_device_bytes_with_wire_timing() {
        let mut u = Uart::new();
        u.init(1, UartConfig::BAUD_9600_8N1).unwrap();
        let mut dev = Canned::new(b"HELLO");
        let mut env = Environment::default();
        let (n, tx) = u.pump(&mut dev, &mut env).unwrap();
        assert_eq!(n, 5);
        assert_eq!(u.rx_pending(), 5);
        assert_eq!(tx.duration, UartConfig::BAUD_9600_8N1.byte_time() * 5);
        assert_eq!(u.read_byte(), Some(b'H'));
        assert_eq!(u.rx_pending(), 4);
    }

    #[test]
    fn pump_requires_init() {
        let mut u = Uart::new();
        let mut dev = Canned::new(b"X");
        let mut env = Environment::default();
        assert_eq!(
            u.pump(&mut dev, &mut env).unwrap_err(),
            UartError::NotInitialised
        );
    }

    #[test]
    fn fifo_overrun_sets_flag() {
        let mut u = Uart::new();
        u.init(1, UartConfig::BAUD_9600_8N1).unwrap();
        let big: Vec<u8> = (0..100).collect();
        let mut dev = Canned::new(&big);
        let mut env = Environment::default();
        u.pump(&mut dev, &mut env).unwrap();
        assert_eq!(u.rx_pending(), 64);
        assert!(u.take_overrun());
        assert!(!u.take_overrun(), "flag must clear");
    }

    #[test]
    fn write_reaches_device() {
        let mut u = Uart::new();
        u.init(1, UartConfig::BAUD_9600_8N1).unwrap();
        let mut dev = Canned::new(b"");
        let tx = u.write(&mut dev, b"CMD").unwrap();
        assert_eq!(dev.1, b"CMD");
        assert_eq!(tx.bytes, 3);
    }
}
