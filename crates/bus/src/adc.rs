//! The MCU's analog-to-digital converter.
//!
//! Models the ATMega128RFA1 ADC: 10-bit successive approximation, a 125 kHz
//! ADC clock (16 MHz / 128 prescaler) and 13 ADC clock cycles per
//! conversion — 104 µs. The paper's §2.2 example (why even an analog
//! temperature sensor needs platform knowledge: "ADC resolution, supply
//! voltage and reference voltage") is exactly the configuration this module
//! owns so that DSL drivers do not have to.

use upnp_sim::{SimDuration, SimRng};

use crate::BusTransaction;

/// Anything that produces an analog voltage for the ADC to sample.
///
/// `Send` so boxed sources can live inside Things that migrate to shard
/// worker threads.
pub trait AnalogSource: Send {
    /// The instantaneous output voltage given the environment, volts.
    fn voltage(&self, env: &crate::Environment, rng: &mut SimRng) -> f64;
}

/// One completed conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdcReading {
    /// The raw counts, `0 ..= 2^bits − 1`.
    pub raw: u16,
}

/// A successive-approximation ADC.
#[derive(Debug, Clone)]
pub struct Adc {
    /// Resolution in bits.
    pub resolution_bits: u8,
    /// Reference voltage, volts: full scale maps to `vref`.
    pub vref: f64,
    /// ADC clock frequency, hertz.
    pub adc_clock_hz: u64,
    /// Input-referred RMS noise, volts.
    pub noise_v_rms: f64,
}

impl Default for Adc {
    fn default() -> Self {
        Self::atmega128rfa1()
    }
}

impl Adc {
    /// The evaluation platform's ADC: 10-bit, 3.3 V reference (AVcc),
    /// 125 kHz ADC clock, ≈1 mV RMS input noise.
    pub fn atmega128rfa1() -> Self {
        Adc {
            resolution_bits: 10,
            vref: 3.3,
            adc_clock_hz: 125_000,
            noise_v_rms: 1.0e-3,
        }
    }

    /// Full-scale count (`2^bits − 1`).
    pub fn full_scale(&self) -> u16 {
        ((1u32 << self.resolution_bits) - 1) as u16
    }

    /// Time for one conversion: 13 ADC clock cycles (AVR datasheet).
    pub fn conversion_time(&self) -> SimDuration {
        SimDuration::from_nanos(13 * 1_000_000_000 / self.adc_clock_hz)
    }

    /// Samples `source` once, returning the reading and its
    /// timing/energy cost.
    ///
    /// Energy: the ADC block draws ≈300 µA at 3.3 V during conversion and
    /// the MCU stays active servicing it (4.1 mA) — ≈1.5 µJ per sample.
    pub fn sample(
        &self,
        source: &dyn AnalogSource,
        env: &crate::Environment,
        rng: &mut SimRng,
    ) -> (AdcReading, BusTransaction) {
        let v = source.voltage(env, rng) + rng.gaussian(self.noise_v_rms);
        let clamped = v.clamp(0.0, self.vref);
        let raw = ((clamped / self.vref) * self.full_scale() as f64).round() as u16;
        let duration = self.conversion_time();
        let secs = duration.as_secs_f64();
        let energy_j = secs * 3.3 * (300e-6 + 4.1e-3);
        (
            AdcReading { raw },
            BusTransaction {
                duration,
                energy_j,
                bytes: 2,
            },
        )
    }

    /// Converts raw counts back to volts (what a driver does in software).
    pub fn to_volts(&self, raw: u16) -> f64 {
        raw as f64 / self.full_scale() as f64 * self.vref
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;

    /// A fixed-voltage source for tests.
    struct Fixed(f64);

    impl AnalogSource for Fixed {
        fn voltage(&self, _env: &Environment, _rng: &mut SimRng) -> f64 {
            self.0
        }
    }

    #[test]
    fn conversion_takes_104_us() {
        let adc = Adc::atmega128rfa1();
        assert_eq!(adc.conversion_time(), SimDuration::from_micros(104));
    }

    #[test]
    fn full_scale_is_1023_for_10_bits() {
        assert_eq!(Adc::atmega128rfa1().full_scale(), 1023);
    }

    #[test]
    fn midscale_voltage_reads_midscale() {
        let mut adc = Adc::atmega128rfa1();
        adc.noise_v_rms = 0.0;
        let env = Environment::default();
        let mut rng = SimRng::seed(1);
        let (r, tx) = adc.sample(&Fixed(1.65), &env, &mut rng);
        assert!((r.raw as i32 - 512).abs() <= 1, "raw {}", r.raw);
        assert_eq!(tx.bytes, 2);
        assert!(tx.duration == SimDuration::from_micros(104));
    }

    #[test]
    fn rails_clamp() {
        let mut adc = Adc::atmega128rfa1();
        adc.noise_v_rms = 0.0;
        let env = Environment::default();
        let mut rng = SimRng::seed(2);
        let (lo, _) = adc.sample(&Fixed(-1.0), &env, &mut rng);
        assert_eq!(lo.raw, 0);
        let (hi, _) = adc.sample(&Fixed(9.9), &env, &mut rng);
        assert_eq!(hi.raw, 1023);
    }

    #[test]
    fn to_volts_roundtrips_quantised() {
        let adc = Adc::atmega128rfa1();
        let v = adc.to_volts(512);
        assert!((v - 1.6516).abs() < 1e-3);
        let lsb = adc.vref / adc.full_scale() as f64;
        assert!((adc.to_volts(513) - v - lsb).abs() < 1e-12);
    }

    #[test]
    fn sample_energy_is_microjoule_scale() {
        let adc = Adc::atmega128rfa1();
        let env = Environment::default();
        let mut rng = SimRng::seed(3);
        let (_, tx) = adc.sample(&Fixed(1.0), &env, &mut rng);
        assert!(
            tx.energy_j > 0.5e-6 && tx.energy_j < 5e-6,
            "{}",
            tx.energy_j
        );
    }

    #[test]
    fn noise_perturbs_reading() {
        let adc = Adc::atmega128rfa1();
        let env = Environment::default();
        let mut rng = SimRng::seed(4);
        let readings: Vec<u16> = (0..100)
            .map(|_| adc.sample(&Fixed(1.65), &env, &mut rng).0.raw)
            .collect();
        let distinct: std::collections::HashSet<_> = readings.iter().collect();
        assert!(distinct.len() > 1, "noise produced identical readings");
    }
}
