//! Property tests for the identification pipeline: codec, solver and the
//! full board path.

use proptest::prelude::*;
use upnp_hw::board::{ChannelResult, ControlBoard};
use upnp_hw::channels::ChannelId;
use upnp_hw::encoding::PulseCodec;
use upnp_hw::eseries::Series;
use upnp_hw::id::DeviceTypeId;
use upnp_hw::peripheral::{Interconnect, PeripheralBoard};
use upnp_hw::solver;
use upnp_sim::{SimDuration, SimTime};

proptest! {
    /// Any byte survives encode→perturb→decode while the perturbation
    /// stays within 90 % of the guard band.
    #[test]
    fn codec_tolerates_in_band_error(byte: u8, err_frac in -0.9f64..0.9) {
        let codec = PulseCodec::paper();
        let t = codec.encode(byte);
        let factor = (codec.guard_band() * err_frac).exp();
        let perturbed = SimDuration::from_secs_f64(t.as_secs_f64() * factor);
        prop_assert_eq!(codec.decode(perturbed).unwrap(), byte);
    }

    /// Decode is monotone: longer pulses never decode to smaller bytes.
    #[test]
    fn codec_decode_is_monotone(a in 1u64..200_000_000, b in 1u64..200_000_000) {
        let codec = PulseCodec::paper();
        let (lo, hi) = (a.min(b), a.max(b));
        let d_lo = codec.decode(SimDuration::from_nanos(lo));
        let d_hi = codec.decode(SimDuration::from_nanos(hi));
        if let (Ok(x), Ok(y)) = (d_lo, d_hi) {
            prop_assert!(x <= y, "lo {lo} -> {x}, hi {hi} -> {y}");
        }
    }

    /// Every non-reserved identifier has a purchasable resistor set that
    /// verifies.
    #[test]
    fn solver_realises_arbitrary_ids(raw: u32) {
        let id = DeviceTypeId::new(raw);
        if id.is_reserved() {
            return Ok(());
        }
        let solved = solver::solve_resistors(id).unwrap();
        prop_assert!(solver::verify_solution(&solved));
        for s in &solved.stages {
            prop_assert!(s.placement_error.abs() <= solver::MAX_PLACEMENT_ERROR);
        }
    }

    /// An ideal board identifies any ideal peripheral exactly.
    #[test]
    fn ideal_board_identifies_arbitrary_ids(raw: u32) {
        let id = DeviceTypeId::new(raw);
        if id.is_reserved() {
            return Ok(());
        }
        let mut board = ControlBoard::ideal();
        let p = PeripheralBoard::manufacture_ideal(id, Interconnect::Adc).unwrap();
        board.plug(ChannelId(0), p).unwrap();
        let outcome = board.scan(SimTime::ZERO, 25.0);
        prop_assert_eq!(outcome.channels[0].result, ChannelResult::Identified(id));
    }

    /// E-series nearest never returns a value farther than half the
    /// series' worst step.
    #[test]
    fn eseries_nearest_is_actually_nearest(target in 10.0f64..1e6) {
        let v = Series::E96.nearest(target, 0, 7).unwrap();
        let rel = (v - target).abs() / target;
        let bound = upnp_hw::eseries::worst_case_step(Series::E96) / 2.0 + 1e-9;
        prop_assert!(rel <= bound, "target {target}: {v} (rel {rel})");
    }

    /// Scan duration grows monotonically with the byte values of the id
    /// (larger bytes = longer pulses), for single-channel boards.
    #[test]
    fn scan_time_tracks_byte_magnitude(lo in 1u8..120, delta in 1u8..120) {
        let hi = lo + delta;
        let small = DeviceTypeId::from_bytes([lo; 4]);
        let large = DeviceTypeId::from_bytes([hi; 4]);
        let scan = |id| {
            let mut board = ControlBoard::ideal();
            let p = PeripheralBoard::manufacture_ideal(id, Interconnect::Adc).unwrap();
            board.plug(ChannelId(0), p).unwrap();
            board.scan(SimTime::ZERO, 25.0).duration()
        };
        prop_assert!(scan(large) > scan(small));
    }
}
