//! Roundtrip property suite for the hardware-identification encode path:
//! a random 32-bit device-type identifier is realised as four E-series
//! resistor pairs (the online tool's output), driven through the
//! monostable pulse model, and decoded from the pulse widths back to the
//! original identifier — stage by stage and through the full board.

use proptest::prelude::*;
use upnp_hw::board::{ChannelResult, ControlBoard};
use upnp_hw::calib::{self, BoardCalibration};
use upnp_hw::channels::ChannelId;
use upnp_hw::components::{Capacitor, ToleranceClass};
use upnp_hw::encoding::PulseCodec;
use upnp_hw::id::DeviceTypeId;
use upnp_hw::multivibrator::{measure, Monostable};
use upnp_hw::peripheral::{Interconnect, PeripheralBoard};
use upnp_hw::solver;
use upnp_sim::SimRng;
use upnp_sim::SimTime;

proptest! {
    /// Any non-reserved identifier encodes to four purchasable resistor
    /// pairs whose ideal pulse widths decode byte-exactly back to the id.
    #[test]
    fn encoding_to_pulse_decode_recovers_id(raw: u32) {
        let id = DeviceTypeId::new(raw);
        if id.is_reserved() {
            return Ok(());
        }
        let solved = solver::solve_resistors(id).unwrap();
        let codec = PulseCodec::paper();
        let mono = Monostable::ideal(Capacitor::ideal(calib::C_NOMINAL));
        let cal = BoardCalibration::ideal();
        let mut decoded = [0u8; 4];
        for (stage, s) in solved.stages.iter().enumerate() {
            let pair = s.ideal_pair();
            let width = mono.pulse_width(pair.at_temperature(25.0), 25.0);
            let normalised = cal.normalise(stage, measure(width));
            decoded[stage] = codec.decode(normalised).unwrap();
        }
        prop_assert_eq!(DeviceTypeId::from_bytes(decoded), id);
    }

    /// The solver's pair placement always lands within the documented
    /// E-series placement budget, which in turn sits well inside the
    /// codec's guard band — the margin that makes decode-after-tolerance
    /// possible at all.
    #[test]
    fn placement_stays_within_eseries_budget(raw: u32) {
        let id = DeviceTypeId::new(raw);
        if id.is_reserved() {
            return Ok(());
        }
        let solved = solver::solve_resistors(id).unwrap();
        let codec = PulseCodec::paper();
        for s in &solved.stages {
            let nominal = s.coarse_ohms + s.trim_ohms;
            let rel = (nominal - s.target_ohms).abs() / s.target_ohms;
            prop_assert!(rel <= solver::MAX_PLACEMENT_ERROR + 1e-12, "placement {rel}");
            prop_assert!(
                rel < codec.guard_band() / 4.0,
                "placement {rel} eats too much of the {} guard band",
                codec.guard_band()
            );
        }
    }

    /// A peripheral manufactured with precision (0.1 %) parts — the
    /// tolerance class the paper's online tool prescribes — identifies
    /// exactly on an as-manufactured (sampled) control board.
    #[test]
    fn precision_parts_identify_on_sampled_boards(raw: u32, seed: u64) {
        let id = DeviceTypeId::new(raw);
        if id.is_reserved() {
            return Ok(());
        }
        let mut rng = SimRng::seed(seed);
        let peripheral = PeripheralBoard::manufacture(
            id,
            Interconnect::Adc,
            ToleranceClass::PointOnePercent,
            &mut rng,
        )
        .unwrap();
        let mut board = ControlBoard::sample(&mut rng);
        board.plug(ChannelId(0), peripheral).unwrap();
        let outcome = board.scan(SimTime::ZERO, 25.0);
        prop_assert_eq!(outcome.channels[0].result, ChannelResult::Identified(id));
    }

    /// Pulse widths are strictly monotone in the encoded byte for ideal
    /// parts: the geometric code never collapses two bytes onto one
    /// decode window through the resistor realisation.
    #[test]
    fn stage_pulses_are_monotone_in_byte(raw: u32) {
        let id = DeviceTypeId::new(raw);
        if id.is_reserved() {
            return Ok(());
        }
        let solved = solver::solve_resistors(id).unwrap();
        let mono = Monostable::ideal(Capacitor::ideal(calib::C_NOMINAL));
        let bytes = id.bytes();
        for (i, a) in solved.stages.iter().enumerate() {
            for (j, b) in solved.stages.iter().enumerate() {
                if bytes[i] < bytes[j] {
                    let wa = mono.pulse_width(a.ideal_pair().at_temperature(25.0), 25.0);
                    let wb = mono.pulse_width(b.ideal_pair().at_temperature(25.0), 25.0);
                    prop_assert!(
                        wa < wb,
                        "byte {} pulse {:?} not below byte {} pulse {:?}",
                        bytes[i],
                        wa,
                        bytes[j],
                        wb
                    );
                }
            }
        }
    }
}
