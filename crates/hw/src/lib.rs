//! µPnP hardware identification (paper §3).
//!
//! µPnP identifies a peripheral from its *passive electrical components*:
//! the peripheral carries four resistor positions (each a series pair, pads
//! `RnA`/`RnB` in the paper's Figure 4); the control board carries four
//! monostable multivibrators with fixed capacitors. Plugging a peripheral in
//! produces four chained timed pulses (`T = k·R·C`, Figures 2 and 3) whose
//! durations decode to four bytes — a 32-bit device-type identifier in the
//! open global µPnP address space.
//!
//! This crate is a behavioural simulation of that circuit, faithful to the
//! failure modes that drove the paper's design:
//!
//! * component tolerances ([`components`], [`eseries`]) make a single long
//!   pulse unable to encode 32 bits — the reason for the 4×8-bit split;
//! * the byte↔duration mapping must be *geometric* ([`encoding`]) because
//!   timing error is multiplicative;
//! * one shared multivibrator bank is time-multiplexed across channels
//!   ([`channels`], Figure 5) to keep board cost down;
//! * the board is power-gated behind a connect/disconnect interrupt
//!   ([`board`], §3.2) so its 7 mA draw is only paid during identification.
//!
//! The [`solver`] module is the reproduction of the paper's online tool that
//! turns an allocated identifier into the resistor set to solder onto a
//! peripheral.

pub mod board;
pub mod calib;
pub mod channels;
pub mod components;
pub mod encoding;
pub mod eseries;
pub mod id;
pub mod multivibrator;
pub mod peripheral;
pub mod solver;
pub mod vendor;

pub use board::{ControlBoard, ScanOutcome, ScanPolicy};
pub use calib::BoardCalibration;
pub use channels::{ChannelId, ChannelState};
pub use components::{Capacitor, Resistor, ResistorPair, ToleranceClass};
pub use encoding::{DecodeError, PulseCodec};
pub use id::DeviceTypeId;
pub use multivibrator::Monostable;
pub use peripheral::{Interconnect, PeripheralBoard};
pub use solver::{solve_resistors, SolveError, SolvedChannel};
pub use vendor::{DeviceClass, StructuredId, VendorId};
