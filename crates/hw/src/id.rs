//! 32-bit µPnP device-type identifiers.
//!
//! Each peripheral type is assigned a 32-bit identifier in the open global
//! µPnP address space (paper §3.3), encoded on the peripheral as four pulse
//! lengths of one byte each (§3, Figure 3) and embedded verbatim in the
//! peripheral's IPv6 multicast group address (§5.1, Figure 9).

use std::fmt;
use std::str::FromStr;

/// A 32-bit device-type identifier in the global µPnP address space.
///
/// # Examples
///
/// ```
/// use upnp_hw::DeviceTypeId;
///
/// let id = DeviceTypeId::new(0xed3f_0ac1);
/// assert_eq!(id.bytes(), [0xed, 0x3f, 0x0a, 0xc1]);
/// assert_eq!(DeviceTypeId::from_bytes([0xed, 0x3f, 0x0a, 0xc1]), id);
/// assert_eq!(id.to_string(), "0xed3f0ac1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceTypeId(pub u32);

impl DeviceTypeId {
    /// The reserved all-peripherals wildcard (multicast schema, §5.1).
    pub const ALL_PERIPHERALS: DeviceTypeId = DeviceTypeId(0x0000_0000);

    /// The reserved all-clients identifier (multicast schema, §5.1).
    pub const ALL_CLIENTS: DeviceTypeId = DeviceTypeId(0xffff_ffff);

    /// Creates an identifier from its raw 32-bit value.
    pub const fn new(raw: u32) -> Self {
        DeviceTypeId(raw)
    }

    /// Returns the raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the four pulse bytes, most significant first (T1..T4).
    pub const fn bytes(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Reassembles an identifier from its four pulse bytes (T1..T4).
    pub const fn from_bytes(bytes: [u8; 4]) -> Self {
        DeviceTypeId(u32::from_be_bytes(bytes))
    }

    /// True if this is one of the two reserved identifiers that must never
    /// be assigned to a physical peripheral type.
    pub const fn is_reserved(self) -> bool {
        self.0 == Self::ALL_PERIPHERALS.0 || self.0 == Self::ALL_CLIENTS.0
    }
}

impl fmt::Display for DeviceTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u32> for DeviceTypeId {
    fn from(raw: u32) -> Self {
        DeviceTypeId(raw)
    }
}

/// Error parsing a textual device identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIdError(String);

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid device type id: {}", self.0)
    }
}

impl std::error::Error for ParseIdError {}

impl FromStr for DeviceTypeId {
    type Err = ParseIdError;

    /// Parses `0xAABBCCDD` or plain hex `AABBCCDD`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        u32::from_str_radix(hex, 16)
            .map(DeviceTypeId)
            .map_err(|_| ParseIdError(s.to_string()))
    }
}

/// The device-type identifiers used by the paper's four prototype
/// peripherals (§6). The values are chosen so that the full identification
/// scan of each lands inside the paper's reported 220–300 ms window; two of
/// them appear verbatim in the paper's figures.
pub mod prototypes {
    use super::DeviceTypeId;

    /// TMP36 analog temperature sensor (ADC) — the ID shown in Figure 8.
    pub const TMP36: DeviceTypeId = DeviceTypeId(0xad1c_be01);

    /// HIH-4030 analog humidity sensor (ADC).
    pub const HIH4030: DeviceTypeId = DeviceTypeId(0xbe03_af0e);

    /// ID-20LA RFID card reader (UART) — the ID shown in Figure 10.
    pub const ID20LA: DeviceTypeId = DeviceTypeId(0xed3f_0ac1);

    /// BMP180 barometric pressure sensor (I²C) — the ID shown in Figure 11.
    pub const BMP180: DeviceTypeId = DeviceTypeId(0xed3f_bda1);

    /// All four prototype identifiers.
    pub const ALL: [DeviceTypeId; 4] = [TMP36, HIH4030, ID20LA, BMP180];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        for raw in [0u32, 1, 0xdead_beef, u32::MAX, 0x0102_0304] {
            let id = DeviceTypeId::new(raw);
            assert_eq!(DeviceTypeId::from_bytes(id.bytes()), id);
        }
    }

    #[test]
    fn bytes_are_big_endian() {
        assert_eq!(DeviceTypeId::new(0x0102_0304).bytes(), [1, 2, 3, 4]);
    }

    #[test]
    fn reserved_ids() {
        assert!(DeviceTypeId::ALL_PERIPHERALS.is_reserved());
        assert!(DeviceTypeId::ALL_CLIENTS.is_reserved());
        assert!(!DeviceTypeId::new(0xed3f_0ac1).is_reserved());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let id = DeviceTypeId::new(0xed3f_0ac1);
        let s = id.to_string();
        assert_eq!(s, "0xed3f0ac1");
        assert_eq!(s.parse::<DeviceTypeId>().unwrap(), id);
        assert_eq!("ED3F0AC1".parse::<DeviceTypeId>().unwrap(), id);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<DeviceTypeId>().is_err());
        assert!("0xzz".parse::<DeviceTypeId>().is_err());
        assert!("0x123456789".parse::<DeviceTypeId>().is_err());
    }

    #[test]
    fn prototype_ids_are_distinct_and_unreserved() {
        let ids = prototypes::ALL;
        for (i, a) in ids.iter().enumerate() {
            assert!(!a.is_reserved());
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
