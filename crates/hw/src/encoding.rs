//! The pulse-length ↔ byte codec.
//!
//! §3 of the paper: "a unique sensor ID is defined by 4 time intervals
//! (T1–T4), each of which is mapped to a single byte value". This module
//! defines that mapping.
//!
//! Because every error source in `T = k·R·C` is *multiplicative* (a ±0.1 %
//! resistor shifts T by ±0.1 % regardless of magnitude), byte values are
//! spaced **geometrically**: `T(b) = T_min · r^b`. A linear spacing would
//! need its step to exceed the absolute error at `T_max`, which forces the
//! worst-case pulse to grow exponentially with the number of encoded values —
//! exactly the effect the paper cites ("the required component values grow
//! exponentially due to their inherent inaccuracy") and the reason it uses
//! four short pulses instead of one long one. The [`LinearCodec`] is kept
//! for the ablation benchmark that demonstrates this.

use upnp_sim::SimDuration;

use crate::calib;

/// Why a pulse failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The pulse was shorter than the decode floor for byte 0.
    TooShort,
    /// The pulse was longer than the decode ceiling for byte 255.
    TooLong,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "pulse shorter than decode floor"),
            DecodeError::TooLong => write!(f, "pulse longer than decode ceiling"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The production geometric codec.
///
/// # Examples
///
/// ```
/// use upnp_hw::PulseCodec;
///
/// let codec = PulseCodec::paper();
/// let t = codec.encode(0xad);
/// assert_eq!(codec.decode(t).unwrap(), 0xad);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PulseCodec {
    t_min: SimDuration,
    ratio: f64,
}

impl PulseCodec {
    /// The codec with the paper-calibrated constants from [`calib`].
    pub fn paper() -> Self {
        PulseCodec {
            t_min: calib::T_MIN,
            ratio: calib::RATIO,
        }
    }

    /// Creates a codec with explicit constants.
    ///
    /// # Panics
    ///
    /// Panics unless `t_min` is positive and `ratio > 1`.
    pub fn new(t_min: SimDuration, ratio: f64) -> Self {
        assert!(!t_min.is_zero(), "t_min must be positive");
        assert!(ratio.is_finite() && ratio > 1.0, "ratio must exceed 1");
        PulseCodec { t_min, ratio }
    }

    /// The ideal pulse duration encoding `byte`.
    pub fn encode(&self, byte: u8) -> SimDuration {
        SimDuration::from_secs_f64(self.t_min.as_secs_f64() * self.ratio.powi(byte as i32))
    }

    /// Decodes a measured pulse duration back to a byte.
    ///
    /// Accepts anything within half a geometric step of an ideal duration;
    /// beyond the ends of the code it reports [`DecodeError`].
    pub fn decode(&self, pulse: SimDuration) -> Result<u8, DecodeError> {
        if pulse.is_zero() {
            return Err(DecodeError::TooShort);
        }
        let x = (pulse.as_secs_f64() / self.t_min.as_secs_f64()).ln() / self.ratio.ln();
        if x < -0.5 {
            Err(DecodeError::TooShort)
        } else if x > 255.5 {
            Err(DecodeError::TooLong)
        } else {
            Ok(x.round().clamp(0.0, 255.0) as u8)
        }
    }

    /// The relative error the codec tolerates before a decode flips to the
    /// neighbouring byte: half a step in log space.
    pub fn guard_band(&self) -> f64 {
        self.ratio.ln() / 2.0
    }

    /// The worst-case (byte 255) pulse duration.
    pub fn t_max(&self) -> SimDuration {
        self.encode(255)
    }
}

/// A linearly spaced codec, kept exclusively for the "why geometric?"
/// ablation (see `bench/ablations.rs`).
///
/// `T(b) = t_min + b·step`. Its decode guard band is `step/2` *absolute*,
/// so the tolerable relative error at byte 255 shrinks to
/// `step / (2·T_max)` — for any practical step this is far below component
/// tolerance, which is why the real design cannot use it.
#[derive(Debug, Clone, Copy)]
pub struct LinearCodec {
    t_min: SimDuration,
    step: SimDuration,
}

impl LinearCodec {
    /// Creates a linear codec.
    ///
    /// # Panics
    ///
    /// Panics if `t_min` or `step` is zero.
    pub fn new(t_min: SimDuration, step: SimDuration) -> Self {
        assert!(!t_min.is_zero() && !step.is_zero());
        LinearCodec { t_min, step }
    }

    /// A linear codec spanning the same duration range as the paper codec.
    pub fn paper_span() -> Self {
        let geo = PulseCodec::paper();
        let span = geo.t_max() - calib::T_MIN;
        LinearCodec {
            t_min: calib::T_MIN,
            step: span / 255,
        }
    }

    /// The ideal pulse duration encoding `byte`.
    pub fn encode(&self, byte: u8) -> SimDuration {
        self.t_min + self.step * byte as u64
    }

    /// Decodes a measured pulse duration back to a byte.
    pub fn decode(&self, pulse: SimDuration) -> Result<u8, DecodeError> {
        let x = (pulse.as_secs_f64() - self.t_min.as_secs_f64()) / self.step.as_secs_f64();
        if x < -0.5 {
            Err(DecodeError::TooShort)
        } else if x > 255.5 {
            Err(DecodeError::TooLong)
        } else {
            Ok(x.round().clamp(0.0, 255.0) as u8)
        }
    }

    /// Relative error tolerated at the *worst* (largest) code point.
    pub fn guard_band_at_max(&self) -> f64 {
        (self.step.as_secs_f64() / 2.0) / self.encode(255).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_roundtrip_all_bytes() {
        let codec = PulseCodec::paper();
        for b in 0..=255u8 {
            assert_eq!(codec.decode(codec.encode(b)).unwrap(), b, "byte {b}");
        }
    }

    #[test]
    fn geometric_roundtrip_under_error_within_guard_band() {
        let codec = PulseCodec::paper();
        // Error at 90 % of the guard band must still decode correctly.
        let err = (codec.guard_band() * 0.9).exp();
        for b in (0..=255u8).step_by(5) {
            let t = codec.encode(b);
            let fast = SimDuration::from_secs_f64(t.as_secs_f64() / err);
            let slow = SimDuration::from_secs_f64(t.as_secs_f64() * err);
            assert_eq!(codec.decode(fast).unwrap(), b, "fast byte {b}");
            assert_eq!(codec.decode(slow).unwrap(), b, "slow byte {b}");
        }
    }

    #[test]
    fn error_past_guard_band_flips_to_neighbour() {
        let codec = PulseCodec::paper();
        let err = (codec.guard_band() * 1.2).exp();
        let t = codec.encode(100);
        let slow = SimDuration::from_secs_f64(t.as_secs_f64() * err);
        assert_eq!(codec.decode(slow).unwrap(), 101);
    }

    #[test]
    fn out_of_range_pulses_are_rejected() {
        let codec = PulseCodec::paper();
        assert_eq!(codec.decode(SimDuration::ZERO), Err(DecodeError::TooShort));
        assert_eq!(
            codec.decode(SimDuration::from_micros(1)),
            Err(DecodeError::TooShort)
        );
        let way_long = SimDuration::from_secs(1);
        assert_eq!(codec.decode(way_long), Err(DecodeError::TooLong));
    }

    #[test]
    fn paper_codec_worst_pulse_is_short() {
        // The whole point of 4×8-bit: worst-case pulse stays ~100 ms instead
        // of growing exponentially.
        let codec = PulseCodec::paper();
        assert!(codec.t_max() < SimDuration::from_millis(120));
    }

    #[test]
    fn linear_roundtrip_without_error() {
        let codec = LinearCodec::paper_span();
        for b in 0..=255u8 {
            assert_eq!(codec.decode(codec.encode(b)).unwrap(), b, "byte {b}");
        }
        assert!(codec.decode(SimDuration::from_micros(1)).is_err());
        assert!(codec.decode(SimDuration::from_secs(1)).is_err());
    }

    #[test]
    fn linear_guard_band_is_hopeless_at_the_top() {
        // Over the same duration span, the linear code tolerates less than
        // half the relative error of the geometric code at the top point.
        let lin = LinearCodec::paper_span();
        let geo = PulseCodec::paper();
        assert!(lin.guard_band_at_max() < geo.guard_band() / 2.0);
    }

    #[test]
    fn linear_code_with_geometric_guard_band_is_infeasible() {
        // The paper's exponential-blowup argument, made precise: a linear
        // 256-level code whose guard band at the top matches the geometric
        // codec would need `step = 2·g·T_max`, i.e.
        // `T_max · (1 − 510·g) = T_min`. With g ≈ 0.38 % the coefficient is
        // negative — no finite T_max exists at all.
        let g = PulseCodec::paper().guard_band();
        let coefficient = 1.0 - 2.0 * 255.0 * g;
        assert!(
            coefficient < 0.0,
            "a finite linear span would exist (coefficient {coefficient})"
        );
    }

    #[test]
    #[should_panic(expected = "ratio must exceed 1")]
    fn bad_ratio_panics() {
        PulseCodec::new(SimDuration::from_millis(1), 0.99);
    }
}
