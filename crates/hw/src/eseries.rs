//! IEC 60063 preferred number series for resistors and capacitors.
//!
//! Real resistors only come in standard "E-series" values; the paper's
//! online tool must therefore map a requested resistance onto purchasable
//! parts. This module provides the E12/E24/E96 mantissa tables, decade
//! expansion and nearest-value search used by [`crate::solver`].

/// The E12 series (±10 % parts): 12 values per decade.
pub const E12: [f64; 12] = [1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2];

/// The E24 series (±5 % parts): 24 values per decade.
pub const E24: [f64; 24] = [
    1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0, 3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6,
    6.2, 6.8, 7.5, 8.2, 9.1,
];

/// The E96 series (±1 % parts): 96 values per decade.
pub const E96: [f64; 96] = [
    1.00, 1.02, 1.05, 1.07, 1.10, 1.13, 1.15, 1.18, 1.21, 1.24, 1.27, 1.30, 1.33, 1.37, 1.40, 1.43,
    1.47, 1.50, 1.54, 1.58, 1.62, 1.65, 1.69, 1.74, 1.78, 1.82, 1.87, 1.91, 1.96, 2.00, 2.05, 2.10,
    2.15, 2.21, 2.26, 2.32, 2.37, 2.43, 2.49, 2.55, 2.61, 2.67, 2.74, 2.80, 2.87, 2.94, 3.01, 3.09,
    3.16, 3.24, 3.32, 3.40, 3.48, 3.57, 3.65, 3.74, 3.83, 3.92, 4.02, 4.12, 4.22, 4.32, 4.42, 4.53,
    4.64, 4.75, 4.87, 4.99, 5.11, 5.23, 5.36, 5.49, 5.62, 5.76, 5.90, 6.04, 6.19, 6.34, 6.49, 6.65,
    6.81, 6.98, 7.15, 7.32, 7.50, 7.68, 7.87, 8.06, 8.25, 8.45, 8.66, 8.87, 9.09, 9.31, 9.53, 9.76,
];

/// A named E-series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Series {
    /// 12 values per decade, ±10 % tolerance class.
    E12,
    /// 24 values per decade, ±5 % tolerance class.
    E24,
    /// 96 values per decade, ±1 % (or better) tolerance class.
    E96,
}

impl Series {
    /// Returns the mantissa table (values in `[1, 10)`).
    pub fn mantissas(self) -> &'static [f64] {
        match self {
            Series::E12 => &E12,
            Series::E24 => &E24,
            Series::E96 => &E96,
        }
    }

    /// Returns the nearest purchasable value to `target` (in ohms), searching
    /// the decades covering `[10^min_decade, 10^max_decade)`.
    ///
    /// Returns `None` for non-positive or non-finite targets.
    pub fn nearest(self, target: f64, min_decade: i32, max_decade: i32) -> Option<f64> {
        if !target.is_finite() || target <= 0.0 {
            return None;
        }
        let mut best: Option<f64> = None;
        let mut best_err = f64::INFINITY;
        for decade in min_decade..=max_decade {
            let scale = 10f64.powi(decade);
            for &m in self.mantissas() {
                let v = m * scale;
                let err = (v - target).abs();
                if err < best_err {
                    best_err = err;
                    best = Some(v);
                }
            }
        }
        best
    }

    /// Returns the largest purchasable value that does not exceed `target`,
    /// searching the same decade range as [`Series::nearest`].
    pub fn floor(self, target: f64, min_decade: i32, max_decade: i32) -> Option<f64> {
        if !target.is_finite() || target <= 0.0 {
            return None;
        }
        let mut best: Option<f64> = None;
        for decade in min_decade..=max_decade {
            let scale = 10f64.powi(decade);
            for &m in self.mantissas() {
                let v = m * scale;
                if v <= target && best.is_none_or(|b| v > b) {
                    best = Some(v);
                }
            }
        }
        best
    }

    /// Iterates every purchasable value across the given decades, ascending.
    pub fn values(self, min_decade: i32, max_decade: i32) -> Vec<f64> {
        let mut out = Vec::new();
        for decade in min_decade..=max_decade {
            let scale = 10f64.powi(decade);
            for &m in self.mantissas() {
                out.push(m * scale);
            }
        }
        out
    }
}

/// Relative spacing between adjacent values of a series (worst case).
///
/// This is what limits how precisely a *single* resistor can hit an arbitrary
/// target — the reason every µPnP resistor position is a series pair.
pub fn worst_case_step(series: Series) -> f64 {
    let m = series.mantissas();
    let mut worst: f64 = 10.0 / m[m.len() - 1]; // wrap-around to next decade
    for w in m.windows(2) {
        worst = worst.max(w[1] / w[0]);
    }
    worst - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes() {
        assert_eq!(E12.len(), 12);
        assert_eq!(E24.len(), 24);
        assert_eq!(E96.len(), 96);
    }

    #[test]
    fn tables_are_sorted_and_in_decade() {
        for series in [Series::E12, Series::E24, Series::E96] {
            let m = series.mantissas();
            for w in m.windows(2) {
                assert!(w[0] < w[1], "{series:?} not sorted at {w:?}");
            }
            assert!(m[0] >= 1.0 && m[m.len() - 1] < 10.0);
        }
    }

    #[test]
    fn nearest_finds_canonical_values() {
        // 4.7 kΩ is an E12 classic.
        let v = Series::E12.nearest(4_500.0, 0, 6).unwrap();
        assert!((v - 4_700.0).abs() < 1e-9);
        // E96 has 4.53 in its table.
        let v = Series::E96.nearest(4_520.0, 0, 6).unwrap();
        assert!((v - 4_530.0).abs() < 1e-9);
    }

    #[test]
    fn nearest_rejects_bad_targets() {
        assert!(Series::E24.nearest(0.0, 0, 6).is_none());
        assert!(Series::E24.nearest(-5.0, 0, 6).is_none());
        assert!(Series::E24.nearest(f64::NAN, 0, 6).is_none());
    }

    #[test]
    fn floor_never_exceeds_target() {
        for target in [13.0, 99.0, 101.0, 4_699.0, 82_000.0] {
            let v = Series::E24.floor(target, 0, 6).unwrap();
            assert!(v <= target, "floor({target}) = {v}");
        }
        // floor of 9.0 ohm in decades starting at 1 ohm is 8.2 (E12).
        let v = Series::E12.floor(9.0, 0, 6).unwrap();
        assert!((v - 8.2).abs() < 1e-9);
    }

    #[test]
    fn values_are_ascending_within_series() {
        let vals = Series::E96.values(0, 3);
        assert_eq!(vals.len(), 96 * 4);
        for w in vals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn worst_step_matches_series_granularity() {
        // E96: nominal step is 10^(1/96) − 1 ≈ 2.43 %; table rounding keeps
        // the worst observed gap close to that.
        let e96 = worst_case_step(Series::E96);
        assert!(e96 > 0.015 && e96 < 0.035, "E96 worst step {e96}");
        // E12: the 1.2 → 1.5 gap is the worst at exactly 25 %.
        let e12 = worst_case_step(Series::E12);
        assert!(e12 > 0.15 && e12 <= 0.25 + 1e-12, "E12 worst step {e12}");
    }

    #[test]
    fn nearest_relative_error_is_bounded_by_half_step() {
        // Any target inside the searched decades is within half the worst
        // step of a purchasable E96 value.
        let half_step = worst_case_step(Series::E96) / 2.0 + 1e-6;
        let mut t = 10.0;
        while t < 1e6 {
            let v = Series::E96.nearest(t, 0, 7).unwrap();
            let rel = (v - t).abs() / t;
            assert!(rel <= half_step, "target {t}: err {rel}");
            t *= 1.37;
        }
    }
}
