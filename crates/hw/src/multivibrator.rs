//! Monostable multivibrator model (paper Figure 2).
//!
//! A monostable fires one pulse per trigger; the pulse width is
//! `T = k·R·C` where R lives on the peripheral and k·C on the control
//! board. Four monostables are chained so each falling edge triggers the
//! next stage (Figure 3), producing the four ID intervals T1–T4.

use upnp_sim::{SimDuration, SimRng};

use crate::calib;
use crate::components::Capacitor;

/// One monostable stage on the control board.
#[derive(Debug, Clone)]
pub struct Monostable {
    /// The monostable constant of this part (nominally
    /// [`calib::MONOSTABLE_K`], with a small per-part spread).
    k: f64,
    /// The board's fixed timing capacitor for this stage.
    cap: Capacitor,
    /// Trigger-to-output propagation delay.
    propagation: SimDuration,
}

impl Monostable {
    /// Creates a stage with part-to-part spread sampled from `rng`.
    pub fn sample(cap: Capacitor, rng: &mut SimRng) -> Self {
        Monostable {
            k: calib::MONOSTABLE_K * (1.0 + rng.tolerance(calib::K_TOLERANCE)),
            cap,
            propagation: SimDuration::from_nanos(200),
        }
    }

    /// Creates an ideal stage (exact k, used in unit tests).
    pub fn ideal(cap: Capacitor) -> Self {
        Monostable {
            k: calib::MONOSTABLE_K,
            cap,
            propagation: SimDuration::from_nanos(200),
        }
    }

    /// The true `k·C` product of this stage at `temp_c` (seconds per ohm).
    ///
    /// This is the quantity a factory calibration measures (up to the
    /// calibration residual).
    pub fn kc(&self, temp_c: f64) -> f64 {
        self.k * self.cap.at_temperature(temp_c)
    }

    /// The pulse width produced when triggered with `r_ohms` of external
    /// resistance at `temp_c` degrees Celsius.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive resistance: an open circuit does not
    /// trigger a pulse and must be handled by the caller as "channel empty".
    pub fn pulse_width(&self, r_ohms: f64, temp_c: f64) -> SimDuration {
        assert!(
            r_ohms.is_finite() && r_ohms > 0.0,
            "invalid timing resistance: {r_ohms}"
        );
        SimDuration::from_secs_f64(self.kc(temp_c) * r_ohms)
    }

    /// Trigger-to-output propagation delay of the stage.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }
}

/// Quantises a true pulse width to the board's timer resolution
/// ([`calib::TIMER_TICK`]).
pub fn measure(pulse: SimDuration) -> SimDuration {
    let tick = calib::TIMER_TICK.as_nanos();
    SimDuration::from_nanos(pulse.as_nanos() / tick * tick)
}

#[cfg(test)]
mod tests {
    use super::*;
    use upnp_sim::SimRng;

    #[test]
    fn pulse_width_follows_krc() {
        let m = Monostable::ideal(Capacitor::ideal(100e-9));
        // 1.1 × 100 kΩ × 100 nF = 11 ms.
        let t = m.pulse_width(100_000.0, 25.0);
        assert!((t.as_millis_f64() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn pulse_scales_linearly_with_r() {
        let m = Monostable::ideal(Capacitor::ideal(100e-9));
        let t1 = m.pulse_width(100_000.0, 25.0);
        let t2 = m.pulse_width(200_000.0, 25.0);
        assert_eq!(t2.as_nanos(), 2 * t1.as_nanos());
    }

    #[test]
    fn sampled_k_spread_is_bounded() {
        let mut rng = SimRng::seed(11);
        for _ in 0..500 {
            let m = Monostable::sample(Capacitor::ideal(100e-9), &mut rng);
            let rel = (m.kc(25.0) / (calib::MONOSTABLE_K * 100e-9) - 1.0).abs();
            assert!(rel <= calib::K_TOLERANCE + 1e-12);
        }
    }

    #[test]
    fn temperature_shifts_pulse_width() {
        let m = Monostable::ideal(Capacitor::ideal(100e-9));
        let warm = m.pulse_width(100_000.0, 60.0);
        let cool = m.pulse_width(100_000.0, 0.0);
        assert!(warm > cool);
    }

    #[test]
    #[should_panic(expected = "invalid timing resistance")]
    fn open_circuit_panics() {
        let m = Monostable::ideal(Capacitor::ideal(100e-9));
        m.pulse_width(0.0, 25.0);
    }

    #[test]
    fn measurement_quantises_to_timer_tick() {
        let t = SimDuration::from_nanos(1_234_777);
        let q = measure(t);
        assert_eq!(q.as_nanos(), 1_234_500);
        assert_eq!(measure(q), q);
    }

    #[test]
    fn quantisation_error_is_below_guard_band() {
        // Half a tick on the shortest pulse is far below the codec guard
        // band, so measurement never dominates the error budget.
        let rel = calib::TIMER_TICK.as_secs_f64() / calib::T_MIN.as_secs_f64();
        assert!(rel < crate::encoding::PulseCodec::paper().guard_band() / 10.0);
    }
}
