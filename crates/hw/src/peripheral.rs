//! Peripheral-side hardware: the four ID resistor pairs and the
//! interconnect type (paper §3.1, Figure 4 and Table 1).

use upnp_sim::SimRng;

use crate::components::{ResistorPair, ToleranceClass};
use crate::id::DeviceTypeId;
use crate::solver::{self, SolveError, SolvedChannel};

/// The communication bus a peripheral uses once identified (Table 1).
///
/// After identification the control board switches the connector's
/// communication pins (10–12) to the matching bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interconnect {
    /// Analog output sampled by the MCU's ADC (pin 10 = analog signal).
    Adc,
    /// I²C (pin 10 = SDA, pin 11 = SCL).
    I2c,
    /// SPI (pin 10 = MOSI, pin 11 = MISO, pin 12 = SCK).
    Spi,
    /// UART (pin 10 = TX, pin 11 = RX).
    Uart,
}

impl Interconnect {
    /// The connector pin assignment of this bus, as `(pin10, pin11, pin12)`
    /// (Table 1; `None` = not connected).
    pub fn pinout(self) -> (&'static str, Option<&'static str>, Option<&'static str>) {
        match self {
            Interconnect::Adc => ("Analog Signal", None, None),
            Interconnect::I2c => ("SDA", Some("SCL"), None),
            Interconnect::Spi => ("MOSI", Some("MISO"), Some("SCK")),
            Interconnect::Uart => ("TX", Some("RX"), None),
        }
    }
}

impl std::fmt::Display for Interconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Interconnect::Adc => "ADC",
            Interconnect::I2c => "I2C",
            Interconnect::Spi => "SPI",
            Interconnect::Uart => "UART",
        };
        write!(f, "{s}")
    }
}

/// A manufactured µPnP peripheral board.
///
/// Carries the four series resistor pairs that encode the device-type ID
/// (Figure 4: pads `R1A/R1B` … `R4A/R4B`) plus the interconnect over which
/// the actual sensor/actuator talks. Total ID hardware cost: 8 resistors,
/// "less than 1¢" (§6).
#[derive(Debug, Clone)]
pub struct PeripheralBoard {
    /// The device-type identifier this board was built to encode.
    pub device_id: DeviceTypeId,
    /// The four resistor pairs (T1..T4 stages).
    pub resistors: [ResistorPair; 4],
    /// The communication bus of the embedded sensor/actuator.
    pub interconnect: Interconnect,
}

/// A pre-solved peripheral blueprint.
///
/// The resistor solve (the paper's online placement tool — an E96 grid
/// search per ID byte) is deterministic per device type, so a fleet
/// plugging thousands of identical peripherals should run it once.
/// [`PeripheralTemplate::instantiate`] then only samples the per-board
/// as-manufactured component jitter, drawing exactly the same RNG values
/// in the same order as [`PeripheralBoard::manufacture`] — a fleet built
/// from templates is bit-identical to one manufactured board by board.
#[derive(Debug, Clone)]
pub struct PeripheralTemplate {
    solved: SolvedChannel,
    interconnect: Interconnect,
}

impl PeripheralTemplate {
    /// Solves the resistor set for `device_id` once.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the identifier is reserved or a resistor
    /// position cannot be hit with purchasable parts.
    pub fn new(device_id: DeviceTypeId, interconnect: Interconnect) -> Result<Self, SolveError> {
        Ok(PeripheralTemplate {
            solved: solver::solve_resistors(device_id)?,
            interconnect,
        })
    }

    /// The device type this template encodes.
    pub fn device_id(&self) -> DeviceTypeId {
        self.solved.device_id
    }

    /// Stamps out one as-manufactured board: per-stage resistor values are
    /// sampled from `rng` within `tolerance`; everything else is shared
    /// with the template.
    pub fn instantiate(&self, tolerance: ToleranceClass, rng: &mut SimRng) -> PeripheralBoard {
        let resistors = std::array::from_fn(|i| self.solved.stages[i].sample_pair(tolerance, rng));
        PeripheralBoard {
            device_id: self.solved.device_id,
            resistors,
            interconnect: self.interconnect,
        }
    }

    /// Stamps out a board with ideal (exact-value) resistors.
    pub fn instantiate_ideal(&self) -> PeripheralBoard {
        let resistors = std::array::from_fn(|i| self.solved.stages[i].ideal_pair());
        PeripheralBoard {
            device_id: self.solved.device_id,
            resistors,
            interconnect: self.interconnect,
        }
    }
}

impl PeripheralBoard {
    /// Manufactures a board for `device_id`: solves the resistor set (the
    /// paper's online tool) and samples as-manufactured part values with
    /// `tolerance`.
    ///
    /// Equivalent to a one-shot [`PeripheralTemplate`]; fleets that plug
    /// the same device type repeatedly should build the template once and
    /// [`PeripheralTemplate::instantiate`] per plug.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the identifier is reserved or a resistor
    /// position cannot be hit with purchasable parts.
    pub fn manufacture(
        device_id: DeviceTypeId,
        interconnect: Interconnect,
        tolerance: ToleranceClass,
        rng: &mut SimRng,
    ) -> Result<Self, SolveError> {
        Ok(PeripheralTemplate::new(device_id, interconnect)?.instantiate(tolerance, rng))
    }

    /// Manufactures a board with ideal (exact-value) resistors.
    pub fn manufacture_ideal(
        device_id: DeviceTypeId,
        interconnect: Interconnect,
    ) -> Result<Self, SolveError> {
        Ok(PeripheralTemplate::new(device_id, interconnect)?.instantiate_ideal())
    }

    /// The timing resistance presented to multivibrator stage `stage`
    /// (0..4) at `temp_c`.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= 4`.
    pub fn stage_resistance(&self, stage: usize, temp_c: f64) -> f64 {
        self.resistors[stage].at_temperature(temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::prototypes;

    #[test]
    fn pinouts_match_table_1() {
        assert_eq!(Interconnect::Adc.pinout(), ("Analog Signal", None, None));
        assert_eq!(Interconnect::I2c.pinout(), ("SDA", Some("SCL"), None));
        assert_eq!(
            Interconnect::Spi.pinout(),
            ("MOSI", Some("MISO"), Some("SCK"))
        );
        assert_eq!(Interconnect::Uart.pinout(), ("TX", Some("RX"), None));
    }

    #[test]
    fn manufacture_produces_four_pairs() {
        let mut rng = SimRng::seed(21);
        let b = PeripheralBoard::manufacture(
            prototypes::TMP36,
            Interconnect::Adc,
            ToleranceClass::PointOnePercent,
            &mut rng,
        )
        .unwrap();
        assert_eq!(b.device_id, prototypes::TMP36);
        for stage in 0..4 {
            assert!(b.stage_resistance(stage, 25.0) > 0.0);
        }
    }

    #[test]
    fn reserved_ids_cannot_be_manufactured() {
        let mut rng = SimRng::seed(22);
        let err = PeripheralBoard::manufacture(
            DeviceTypeId::ALL_CLIENTS,
            Interconnect::Adc,
            ToleranceClass::Exact,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, SolveError::ReservedId);
    }

    #[test]
    fn ideal_board_resistance_matches_nominal() {
        let b = PeripheralBoard::manufacture_ideal(prototypes::BMP180, Interconnect::I2c).unwrap();
        for (i, pair) in b.resistors.iter().enumerate() {
            assert_eq!(pair.actual_ohms(), pair.nominal_ohms(), "stage {i}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Interconnect::Adc.to_string(), "ADC");
        assert_eq!(Interconnect::Uart.to_string(), "UART");
    }
}
