//! The µPnP control board (paper §3.2, Figures 6 and 7).
//!
//! The board sits between the MCU and the peripherals: it hosts the shared
//! multivibrator bank, the channel mux, the interrupt circuit and the
//! communication-bus switch. Its behavioural contract to the MCU is three
//! pins: `start` (trigger a scan), `output` (the daisy-chained pulse train)
//! and `INT` (a peripheral was connected or disconnected).
//!
//! Power management follows §3.2: the board is *power-gated off* until the
//! interrupt fires, then draws scan power only until every channel has been
//! identified. Average draw therefore scales linearly with how often
//! peripherals change — the crux of the Figure 12 result.

use upnp_sim::{EnergyMeter, SimDuration, SimRng, SimTime, Trace};

use crate::calib::{self, BoardCalibration};
use crate::channels::ChannelId;
use crate::components::{Capacitor, ToleranceClass};
use crate::encoding::{DecodeError, PulseCodec};
use crate::id::DeviceTypeId;
use crate::multivibrator::{measure, Monostable};
use crate::peripheral::PeripheralBoard;

/// How channel slots are sequenced during a scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScanPolicy {
    /// Each slot lasts exactly as long as needed: an empty channel times
    /// out after [`calib::T_EMPTY`], an occupied one ends after its fourth
    /// pulse plus [`calib::T_SETTLE`]. This is the production policy.
    Adaptive,
    /// Every channel gets the same fixed slot `tch`, as drawn in the
    /// paper's Figure 5. Slower, kept for the figure regeneration and the
    /// slot-policy ablation.
    FixedSlot(SimDuration),
}

/// The decode result for one channel of a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelResult {
    /// No peripheral connected.
    Empty,
    /// Four pulses decoded to this identifier.
    Identified(DeviceTypeId),
    /// A pulse fell outside every decode window; the MCU treats the channel
    /// as faulty and will retry on the next interrupt.
    DecodeFailed {
        /// The failing stage (0..4).
        stage: u8,
        /// What went wrong with that pulse.
        error: DecodeError,
    },
}

/// A channel's outcome within a [`ScanOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelReading {
    /// Which channel was read.
    pub channel: ChannelId,
    /// What the identification routine concluded.
    pub result: ChannelResult,
}

/// The result of one identification scan.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// When the scan was triggered.
    pub started: SimTime,
    /// When the last channel slot closed and the board power-gated off.
    pub finished: SimTime,
    /// Energy consumed by the board during the scan, joules.
    pub energy_j: f64,
    /// Per-channel results, in channel order.
    pub channels: Vec<ChannelReading>,
}

impl ScanOutcome {
    /// Total scan duration.
    pub fn duration(&self) -> SimDuration {
        self.finished.since(self.started)
    }

    /// Iterates over the identifiers of all successfully identified
    /// channels.
    pub fn identified(&self) -> impl Iterator<Item = (ChannelId, DeviceTypeId)> + '_ {
        self.channels.iter().filter_map(|r| match r.result {
            ChannelResult::Identified(id) => Some((r.channel, id)),
            _ => None,
        })
    }
}

/// Error returned when plugging a peripheral into the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlugError {
    /// The channel index is beyond the board's channel count.
    NoSuchChannel,
    /// The channel already has a peripheral connected.
    ChannelOccupied,
}

impl std::fmt::Display for PlugError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlugError::NoSuchChannel => write!(f, "no such channel"),
            PlugError::ChannelOccupied => write!(f, "channel already occupied"),
        }
    }
}

impl std::error::Error for PlugError {}

/// The µPnP control board.
pub struct ControlBoard {
    monostables: [Monostable; 4],
    calibration: BoardCalibration,
    codec: PulseCodec,
    policy: ScanPolicy,
    channels: Vec<Option<PeripheralBoard>>,
    interrupt: bool,
    meter: EnergyMeter,
    trace: Trace,
    scans: u64,
}

/// Blueprint for sampled control boards.
///
/// The board's fleet-invariant structure (pulse codec, scan policy,
/// channel layout) lives in the template; [`BoardTemplate::instantiate`]
/// draws only the per-board component jitter — the same RNG values, in
/// the same order, that [`ControlBoard::sample`] draws, so a fleet built
/// from one template is bit-identical to one sampled board by board.
#[derive(Debug, Clone, Copy)]
pub struct BoardTemplate {
    codec: PulseCodec,
    policy: ScanPolicy,
}

impl Default for BoardTemplate {
    fn default() -> Self {
        BoardTemplate {
            codec: PulseCodec::paper(),
            policy: ScanPolicy::Adaptive,
        }
    }
}

impl BoardTemplate {
    /// Stamps out one as-manufactured board, sampling component values
    /// and the factory `k·C` calibration residual from `rng`.
    pub fn instantiate(&self, rng: &mut SimRng) -> ControlBoard {
        let monostables = std::array::from_fn(|_| {
            let cap = Capacitor::sample(calib::C_NOMINAL, ToleranceClass::OnePercent, rng);
            Monostable::sample(cap, rng)
        });
        // Factory calibration: measure each stage's true k·C against the
        // MCU crystal; the stored value carries the measurement residual.
        let kc_measured = std::array::from_fn(|i| {
            let true_kc = monostables[i].kc(25.0);
            true_kc * (1.0 + rng.tolerance(calib::KC_CALIBRATION_RESIDUAL))
        });
        let mut board = ControlBoard::build(monostables, BoardCalibration { kc_measured });
        board.codec = self.codec;
        board.policy = self.policy;
        board
    }
}

impl ControlBoard {
    /// A reusable blueprint for fleet-scale board construction.
    pub fn template() -> BoardTemplate {
        BoardTemplate::default()
    }

    /// Builds a board with as-manufactured components sampled from `rng`
    /// and a factory `k·C` calibration with realistic residual error.
    pub fn sample(rng: &mut SimRng) -> Self {
        BoardTemplate::default().instantiate(rng)
    }

    /// Builds an ideal board (exact components, perfect calibration).
    pub fn ideal() -> Self {
        let monostables =
            std::array::from_fn(|_| Monostable::ideal(Capacitor::ideal(calib::C_NOMINAL)));
        Self::build(monostables, BoardCalibration::ideal())
    }

    fn build(monostables: [Monostable; 4], calibration: BoardCalibration) -> Self {
        ControlBoard {
            monostables,
            calibration,
            codec: PulseCodec::paper(),
            policy: ScanPolicy::Adaptive,
            channels: (0..calib::CHANNEL_COUNT).map(|_| None).collect(),
            interrupt: false,
            meter: EnergyMeter::new("upnp-board"),
            trace: Trace::new(4096),
            scans: 0,
        }
    }

    /// Overrides the slot policy (see [`ScanPolicy`]).
    pub fn set_policy(&mut self, policy: ScanPolicy) {
        self.policy = policy;
    }

    /// Number of peripheral channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Returns the peripheral connected to `channel`, if any.
    pub fn peripheral(&self, channel: ChannelId) -> Option<&PeripheralBoard> {
        self.channels.get(channel.0 as usize)?.as_ref()
    }

    /// Connects a peripheral, raising the interrupt line (§3.2).
    ///
    /// # Errors
    ///
    /// Fails if the channel does not exist or is already occupied.
    pub fn plug(
        &mut self,
        channel: ChannelId,
        peripheral: PeripheralBoard,
    ) -> Result<(), PlugError> {
        let slot = self
            .channels
            .get_mut(channel.0 as usize)
            .ok_or(PlugError::NoSuchChannel)?;
        if slot.is_some() {
            return Err(PlugError::ChannelOccupied);
        }
        *slot = Some(peripheral);
        self.interrupt = true;
        Ok(())
    }

    /// Disconnects the peripheral on `channel`, raising the interrupt line.
    pub fn unplug(&mut self, channel: ChannelId) -> Option<PeripheralBoard> {
        let p = self.channels.get_mut(channel.0 as usize)?.take();
        if p.is_some() {
            self.interrupt = true;
        }
        p
    }

    /// Whether the connect/disconnect interrupt is pending.
    pub fn interrupt_pending(&self) -> bool {
        self.interrupt
    }

    /// Cumulative board energy across all scans (the board draws nothing
    /// while gated off).
    pub fn energy(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The waveform trace of the most recent scans (Figures 2/3/5).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of scans run so far.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Runs the identification routine at virtual time `now` and ambient
    /// temperature `temp_c`, clearing the interrupt.
    ///
    /// Walks every channel slot, generates the pulse train (recorded into
    /// the trace), measures and decodes each pulse, and accounts energy:
    /// base scan power for the whole window plus pulse power while the
    /// output line is high.
    pub fn scan(&mut self, now: SimTime, temp_c: f64) -> ScanOutcome {
        self.interrupt = false;
        self.scans += 1;
        let started = now;
        let mut t = now;

        self.trace.record(t, "start", 1.0);
        t += calib::T_TRIGGER;
        self.trace.record(t, "start", 0.0);

        let mut pulse_high = SimDuration::ZERO;
        let mut readings = Vec::with_capacity(self.channels.len());

        for idx in 0..self.channels.len() {
            let channel = ChannelId(idx as u8);
            let slot_start = t;
            self.trace.record(t, channel.enable_signal(), 1.0);

            let result = match &self.channels[idx] {
                None => {
                    t += calib::T_EMPTY;
                    ChannelResult::Empty
                }
                Some(peripheral) => {
                    let mut bytes = [0u8; 4];
                    let mut failure: Option<(u8, DecodeError)> = None;
                    // Indexing is clearer than zipping here: the loop walks
                    // two parallel tables (monostables and resistors).
                    #[allow(clippy::needless_range_loop)]
                    for stage in 0..4 {
                        let mono = &self.monostables[stage];
                        t += mono.propagation();
                        let r = peripheral.stage_resistance(stage, temp_c);
                        let width = mono.pulse_width(r, temp_c);
                        self.trace.record(t, "output", 1.0);
                        self.trace.record(t + width, "output", 0.0);
                        t += width;
                        pulse_high += width;
                        let normalised = self.calibration.normalise(stage, measure(width));
                        match self.codec.decode(normalised) {
                            Ok(b) => bytes[stage] = b,
                            Err(e) => {
                                failure.get_or_insert((stage as u8, e));
                            }
                        }
                    }
                    t += calib::T_SETTLE;
                    match failure {
                        Some((stage, error)) => ChannelResult::DecodeFailed { stage, error },
                        None => ChannelResult::Identified(DeviceTypeId::from_bytes(bytes)),
                    }
                }
            };

            // Under the fixed-slot policy the slot always lasts `tch`,
            // padding out whatever time the pulses left unused.
            if let ScanPolicy::FixedSlot(tch) = self.policy {
                let used = t.since(slot_start);
                if used < tch {
                    t += tch - used;
                }
            }

            self.trace.record(t, channel.enable_signal(), 0.0);
            readings.push(ChannelReading { channel, result });
        }

        let duration = t.since(started);
        let energy_j = calib::P_SCAN_BASE_W * duration.as_secs_f64()
            + calib::P_PULSE_W * pulse_high.as_secs_f64();
        self.meter.charge_j(energy_j);

        ScanOutcome {
            started,
            finished: t,
            energy_j,
            channels: readings,
        }
    }
}

impl std::fmt::Debug for ControlBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlBoard")
            .field("channels", &self.channels.len())
            .field("interrupt", &self.interrupt)
            .field("scans", &self.scans)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::prototypes;
    use crate::peripheral::Interconnect;

    fn plug_ideal(board: &mut ControlBoard, ch: u8, id: DeviceTypeId) {
        let p = PeripheralBoard::manufacture_ideal(id, Interconnect::Adc).unwrap();
        board.plug(ChannelId(ch), p).unwrap();
    }

    #[test]
    fn ideal_board_identifies_ideal_peripheral() {
        let mut board = ControlBoard::ideal();
        plug_ideal(&mut board, 0, prototypes::TMP36);
        let outcome = board.scan(SimTime::ZERO, 25.0);
        assert_eq!(
            outcome.channels[0].result,
            ChannelResult::Identified(prototypes::TMP36)
        );
        assert_eq!(outcome.channels[1].result, ChannelResult::Empty);
        assert_eq!(outcome.channels[2].result, ChannelResult::Empty);
    }

    #[test]
    fn interrupt_raised_on_plug_and_cleared_by_scan() {
        let mut board = ControlBoard::ideal();
        assert!(!board.interrupt_pending());
        plug_ideal(&mut board, 1, prototypes::BMP180);
        assert!(board.interrupt_pending());
        board.scan(SimTime::ZERO, 25.0);
        assert!(!board.interrupt_pending());
        let p = board.unplug(ChannelId(1)).unwrap();
        assert_eq!(p.device_id, prototypes::BMP180);
        assert!(board.interrupt_pending());
        assert!(board.unplug(ChannelId(1)).is_none());
    }

    #[test]
    fn realistic_board_identifies_realistic_peripherals() {
        // 50 sampled boards × sampled precision peripherals: decode must be
        // error-free at room temperature — this is the design-margin claim.
        let mut rng = SimRng::seed(101);
        for _ in 0..50 {
            let mut board = ControlBoard::sample(&mut rng);
            for (i, id) in prototypes::ALL.iter().take(3).enumerate() {
                let p = PeripheralBoard::manufacture(
                    *id,
                    Interconnect::Adc,
                    ToleranceClass::PointOnePercent,
                    &mut rng,
                )
                .unwrap();
                board.plug(ChannelId(i as u8), p).unwrap();
            }
            let outcome = board.scan(SimTime::ZERO, 25.0);
            for (i, id) in prototypes::ALL.iter().take(3).enumerate() {
                assert_eq!(
                    outcome.channels[i].result,
                    ChannelResult::Identified(*id),
                    "channel {i}"
                );
            }
        }
    }

    #[test]
    fn commodity_resistors_break_decoding() {
        // The ablation claim inverted: with ±5 % parts the geometric code's
        // guard band is hopeless, so decodes must frequently fail or
        // misidentify. This is why the paper specifies precision resistors.
        let mut rng = SimRng::seed(102);
        let mut wrong = 0;
        let trials = 100;
        for _ in 0..trials {
            let mut board = ControlBoard::sample(&mut rng);
            let p = PeripheralBoard::manufacture(
                prototypes::ID20LA,
                Interconnect::Uart,
                ToleranceClass::FivePercent,
                &mut rng,
            )
            .unwrap();
            board.plug(ChannelId(0), p).unwrap();
            let outcome = board.scan(SimTime::ZERO, 25.0);
            if outcome.channels[0].result != ChannelResult::Identified(prototypes::ID20LA) {
                wrong += 1;
            }
        }
        assert!(wrong > trials / 2, "only {wrong}/{trials} misreads");
    }

    #[test]
    fn prototype_scan_times_match_paper_window() {
        let mut board = ControlBoard::ideal();
        let mut times = Vec::new();
        for id in prototypes::ALL {
            plug_ideal(&mut board, 0, id);
            let outcome = board.scan(SimTime::ZERO, 25.0);
            times.push(outcome.duration().as_millis_f64());
            board.unplug(ChannelId(0));
        }
        for (id, ms) in prototypes::ALL.iter().zip(&times) {
            assert!(
                (210.0..=310.0).contains(ms),
                "{id}: {ms:.1} ms outside paper window"
            );
        }
        // The spread across prototypes must be visible (resistor-dependent).
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 30.0, "spread {min}..{max} too narrow");
    }

    #[test]
    fn scan_energy_in_paper_band() {
        let mut board = ControlBoard::ideal();
        for id in prototypes::ALL {
            plug_ideal(&mut board, 0, id);
            let outcome = board.scan(SimTime::ZERO, 25.0);
            let mj = outcome.energy_j * 1e3;
            assert!(
                (2.0..=7.5).contains(&mj),
                "{id}: {mj:.2} mJ outside extended paper band"
            );
            board.unplug(ChannelId(0));
        }
    }

    #[test]
    fn trace_contains_four_output_pulses_per_occupied_channel() {
        let mut board = ControlBoard::ideal();
        plug_ideal(&mut board, 0, prototypes::TMP36);
        plug_ideal(&mut board, 2, prototypes::ID20LA);
        board.scan(SimTime::ZERO, 25.0);
        let pulses = board.trace().pulses("output");
        assert_eq!(pulses.len(), 8, "two peripherals × four pulses");
        // Pulses decode back to the plugged IDs in order.
        let codec = PulseCodec::paper();
        let t1: Vec<u8> = pulses[..4]
            .iter()
            .map(|(s, e)| codec.decode(e.since(*s)).unwrap())
            .collect();
        assert_eq!(t1, prototypes::TMP36.bytes().to_vec());
    }

    #[test]
    fn fixed_slot_policy_pads_slots() {
        let tch = SimDuration::from_millis(500);
        let mut adaptive = ControlBoard::ideal();
        plug_ideal(&mut adaptive, 0, prototypes::TMP36);
        let fast = adaptive.scan(SimTime::ZERO, 25.0).duration();

        let mut fixed = ControlBoard::ideal();
        fixed.set_policy(ScanPolicy::FixedSlot(tch));
        plug_ideal(&mut fixed, 0, prototypes::TMP36);
        let slow = fixed.scan(SimTime::ZERO, 25.0).duration();

        assert!(slow > fast);
        // Fixed: trigger + 3 × 500 ms.
        let expect = calib::T_TRIGGER + tch * 3;
        assert_eq!(slow, expect);
    }

    #[test]
    fn plug_errors() {
        let mut board = ControlBoard::ideal();
        plug_ideal(&mut board, 0, prototypes::TMP36);
        let dup =
            PeripheralBoard::manufacture_ideal(prototypes::BMP180, Interconnect::I2c).unwrap();
        assert_eq!(
            board.plug(ChannelId(0), dup.clone()).unwrap_err(),
            PlugError::ChannelOccupied
        );
        assert_eq!(
            board.plug(ChannelId(9), dup).unwrap_err(),
            PlugError::NoSuchChannel
        );
    }

    #[test]
    fn energy_meter_accumulates_across_scans() {
        let mut board = ControlBoard::ideal();
        plug_ideal(&mut board, 0, prototypes::TMP36);
        let e1 = {
            board.scan(SimTime::ZERO, 25.0);
            board.energy().total_j()
        };
        board.unplug(ChannelId(0));
        plug_ideal(&mut board, 0, prototypes::TMP36);
        board.scan(SimTime::ZERO + SimDuration::from_secs(10), 25.0);
        assert!(board.energy().total_j() > e1 * 1.9);
        assert_eq!(board.scans(), 2);
    }
}
