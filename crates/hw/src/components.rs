//! Passive component models with manufacturing tolerance.
//!
//! The entire µPnP identification scheme rests on how precisely a timed
//! pulse `T = k·R·C` reflects the *nominal* R and C. Real parts deviate:
//! a ±1 % resistor may legally be anywhere in `[0.99·R, 1.01·R]`. The
//! models here sample an "as-manufactured" value once per part (uniform
//! across the tolerance bin — the conservative industry assumption) and add
//! a small temperature-coefficient drift per observation.

use upnp_sim::SimRng;

/// A manufacturing tolerance class for passive components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ToleranceClass {
    /// ±10 % — E12-class commodity parts.
    TenPercent,
    /// ±5 % — E24-class parts.
    FivePercent,
    /// ±1 % — E96-class metal-film resistors.
    OnePercent,
    /// ±0.1 % — E192-class precision parts; what the paper's peripherals
    /// use ("resistors are more precise and cost much less than
    /// capacitors", §3.1).
    PointOnePercent,
    /// An exact part (used for ideal-component ablations).
    Exact,
}

impl ToleranceClass {
    /// The relative half-width of the tolerance bin.
    pub fn relative(self) -> f64 {
        match self {
            ToleranceClass::TenPercent => 0.10,
            ToleranceClass::FivePercent => 0.05,
            ToleranceClass::OnePercent => 0.01,
            ToleranceClass::PointOnePercent => 0.001,
            ToleranceClass::Exact => 0.0,
        }
    }
}

/// A resistor with a nominal value and an as-manufactured actual value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    /// Nominal (marked) resistance in ohms.
    pub nominal_ohms: f64,
    /// Tolerance class of the part.
    pub tolerance: ToleranceClass,
    /// The as-manufactured value in ohms.
    actual_ohms: f64,
}

impl Resistor {
    /// Creates a part whose actual value is sampled from the tolerance bin.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_ohms` is not a positive finite value.
    pub fn sample(nominal_ohms: f64, tolerance: ToleranceClass, rng: &mut SimRng) -> Self {
        assert!(
            nominal_ohms.is_finite() && nominal_ohms > 0.0,
            "invalid resistance: {nominal_ohms}"
        );
        let err = rng.tolerance(tolerance.relative());
        Resistor {
            nominal_ohms,
            tolerance,
            actual_ohms: nominal_ohms * (1.0 + err),
        }
    }

    /// Creates an ideal part whose actual value equals the nominal.
    pub fn ideal(nominal_ohms: f64) -> Self {
        assert!(
            nominal_ohms.is_finite() && nominal_ohms > 0.0,
            "invalid resistance: {nominal_ohms}"
        );
        Resistor {
            nominal_ohms,
            tolerance: ToleranceClass::Exact,
            actual_ohms: nominal_ohms,
        }
    }

    /// The as-manufactured resistance in ohms (no drift applied).
    pub fn actual_ohms(&self) -> f64 {
        self.actual_ohms
    }

    /// The resistance observed at `temp_c` degrees Celsius.
    ///
    /// Metal-film resistors drift roughly ±50 ppm/°C; the reference point is
    /// 25 °C.
    pub fn at_temperature(&self, temp_c: f64) -> f64 {
        const TEMPCO_PER_C: f64 = 50e-6;
        self.actual_ohms * (1.0 + TEMPCO_PER_C * (temp_c - 25.0))
    }
}

/// A series pair of resistors populating one peripheral position.
///
/// The paper's Figure 4 labels each of the four positions with two pads
/// (`R1A`/`R1B` …): a coarse part plus a trim part in series. The pair hits
/// targets far more precisely than any single E-series value can (see
/// [`crate::eseries::worst_case_step`]), which the geometric pulse code
/// requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistorPair {
    /// The coarse element (pad A).
    pub coarse: Resistor,
    /// The trim element (pad B).
    pub trim: Resistor,
}

impl ResistorPair {
    /// Combined as-manufactured series resistance.
    pub fn actual_ohms(&self) -> f64 {
        self.coarse.actual_ohms() + self.trim.actual_ohms()
    }

    /// Combined nominal series resistance.
    pub fn nominal_ohms(&self) -> f64 {
        self.coarse.nominal_ohms + self.trim.nominal_ohms
    }

    /// Combined resistance at `temp_c` degrees Celsius.
    pub fn at_temperature(&self, temp_c: f64) -> f64 {
        self.coarse.at_temperature(temp_c) + self.trim.at_temperature(temp_c)
    }
}

/// A capacitor with a nominal value and an as-manufactured actual value.
///
/// The control board's four timing capacitors are fixed parts (§3.1: "a set
/// of capacitors of fixed value are used on the control board"). Capacitors
/// are the *least* precise passive component, so the board stores a
/// per-board calibration factor measured at manufacture (the simulation
/// models this as a measured effective `k·C` product, see
/// [`crate::calib::BoardCalibration`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// Nominal capacitance in farads.
    pub nominal_farads: f64,
    /// Tolerance class of the part.
    pub tolerance: ToleranceClass,
    /// The as-manufactured value in farads.
    actual_farads: f64,
}

impl Capacitor {
    /// Creates a part whose actual value is sampled from the tolerance bin.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_farads` is not a positive finite value.
    pub fn sample(nominal_farads: f64, tolerance: ToleranceClass, rng: &mut SimRng) -> Self {
        assert!(
            nominal_farads.is_finite() && nominal_farads > 0.0,
            "invalid capacitance: {nominal_farads}"
        );
        let err = rng.tolerance(tolerance.relative());
        Capacitor {
            nominal_farads,
            tolerance,
            actual_farads: nominal_farads * (1.0 + err),
        }
    }

    /// Creates an ideal part whose actual value equals the nominal.
    pub fn ideal(nominal_farads: f64) -> Self {
        assert!(
            nominal_farads.is_finite() && nominal_farads > 0.0,
            "invalid capacitance: {nominal_farads}"
        );
        Capacitor {
            nominal_farads,
            tolerance: ToleranceClass::Exact,
            actual_farads: nominal_farads,
        }
    }

    /// The as-manufactured capacitance in farads.
    pub fn actual_farads(&self) -> f64 {
        self.actual_farads
    }

    /// The capacitance observed at `temp_c` degrees Celsius (C0G/NP0
    /// dielectric, ±30 ppm/°C).
    pub fn at_temperature(&self, temp_c: f64) -> f64 {
        const TEMPCO_PER_C: f64 = 30e-6;
        self.actual_farads * (1.0 + TEMPCO_PER_C * (temp_c - 25.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_resistor_stays_in_bin() {
        let mut rng = SimRng::seed(1);
        for _ in 0..1_000 {
            let r = Resistor::sample(10_000.0, ToleranceClass::OnePercent, &mut rng);
            assert!(r.actual_ohms() >= 9_900.0 && r.actual_ohms() <= 10_100.0);
        }
    }

    #[test]
    fn precision_class_is_tight() {
        let mut rng = SimRng::seed(2);
        for _ in 0..1_000 {
            let r = Resistor::sample(10_000.0, ToleranceClass::PointOnePercent, &mut rng);
            let rel = (r.actual_ohms() - 10_000.0).abs() / 10_000.0;
            assert!(rel <= 0.001);
        }
    }

    #[test]
    fn ideal_parts_are_exact() {
        let r = Resistor::ideal(4_700.0);
        assert_eq!(r.actual_ohms(), 4_700.0);
        let c = Capacitor::ideal(100e-9);
        assert_eq!(c.actual_farads(), 100e-9);
    }

    #[test]
    #[should_panic(expected = "invalid resistance")]
    fn negative_resistance_panics() {
        Resistor::ideal(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid capacitance")]
    fn zero_capacitance_panics() {
        Capacitor::ideal(0.0);
    }

    #[test]
    fn temperature_drift_is_small_and_signed() {
        let r = Resistor::ideal(10_000.0);
        let hot = r.at_temperature(85.0);
        let cold = r.at_temperature(-40.0);
        assert!(hot > 10_000.0 && hot < 10_030.1);
        assert!(cold < 10_000.0 && cold > 9_967.0);
        // At the reference temperature there is no drift.
        assert_eq!(r.at_temperature(25.0), 10_000.0);
    }

    #[test]
    fn pair_sums_series_resistance() {
        let p = ResistorPair {
            coarse: Resistor::ideal(10_000.0),
            trim: Resistor::ideal(220.0),
        };
        assert_eq!(p.nominal_ohms(), 10_220.0);
        assert_eq!(p.actual_ohms(), 10_220.0);
        assert!(p.at_temperature(26.0) > 10_220.0);
    }

    #[test]
    fn pair_relative_error_not_worse_than_parts() {
        // Both parts at ±0.1 %: the series combination is also within ±0.1 %.
        let mut rng = SimRng::seed(3);
        for _ in 0..1_000 {
            let p = ResistorPair {
                coarse: Resistor::sample(10_000.0, ToleranceClass::PointOnePercent, &mut rng),
                trim: Resistor::sample(500.0, ToleranceClass::PointOnePercent, &mut rng),
            };
            let rel = (p.actual_ohms() - p.nominal_ohms()).abs() / p.nominal_ohms();
            assert!(rel <= 0.001, "pair err {rel}");
        }
    }

    #[test]
    fn tolerance_class_values() {
        assert_eq!(ToleranceClass::TenPercent.relative(), 0.10);
        assert_eq!(ToleranceClass::FivePercent.relative(), 0.05);
        assert_eq!(ToleranceClass::OnePercent.relative(), 0.01);
        assert_eq!(ToleranceClass::PointOnePercent.relative(), 0.001);
        assert_eq!(ToleranceClass::Exact.relative(), 0.0);
    }
}
