//! Channel multiplexing (paper §3.2, Figure 5).
//!
//! To keep board cost down, one bank of four multivibrators is shared by
//! all peripheral channels: each channel is enabled for a discrete time
//! slot and the resulting pulses are daisy-chained onto a single `output`
//! line, so only three MCU pins are needed (`start`, `output`, `INT`).

use std::fmt;

/// A peripheral channel on the control board (A, B, C, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u8);

impl ChannelId {
    /// The letter label the paper uses ("channelA", "channelB", …).
    pub fn letter(self) -> char {
        (b'A' + self.0 % 26) as char
    }

    /// The static trace-signal name of this channel's enable line.
    ///
    /// Channels beyond the board's three (plus a few spares) share a
    /// generic label; the board constructor enforces the supported count.
    pub fn enable_signal(self) -> &'static str {
        match self.0 {
            0 => "channelA EN",
            1 => "channelB EN",
            2 => "channelC EN",
            3 => "channelD EN",
            4 => "channelE EN",
            5 => "channelF EN",
            6 => "channelG EN",
            7 => "channelH EN",
            _ => "channel? EN",
        }
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel{}", self.letter())
    }
}

/// Whether a channel has a peripheral connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Nothing plugged in; the slot times out after
    /// [`crate::calib::T_EMPTY`].
    Empty,
    /// A peripheral is plugged in and will produce four pulses.
    Occupied,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_follow_the_alphabet() {
        assert_eq!(ChannelId(0).letter(), 'A');
        assert_eq!(ChannelId(1).letter(), 'B');
        assert_eq!(ChannelId(2).letter(), 'C');
    }

    #[test]
    fn display_matches_paper_figures() {
        assert_eq!(ChannelId(0).to_string(), "channelA");
        assert_eq!(ChannelId(2).to_string(), "channelC");
    }

    #[test]
    fn enable_signals_are_distinct_for_board_channels() {
        let a = ChannelId(0).enable_signal();
        let b = ChannelId(1).enable_signal();
        let c = ChannelId(2).enable_signal();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
