//! Structured identifiers: vendor/product namespace (paper §9).
//!
//! "Our approach will ... be inspired by the ID structure of PCI and USB,
//! which includes a vendor ID and device ID. However we hope to go
//! further, for example by embedding hierarchical device typing."
//!
//! The 32-bit µPnP identifier splits into a 16-bit vendor id and a 16-bit
//! product id whose top four bits carry the device class:
//!
//! ```text
//! | vendor (16) | class (4) | product (12) |
//! ```
//!
//! The flat [`DeviceTypeId`] stays the wire/hardware format — structured
//! ids are a pure naming convention over it, so every existing mechanism
//! (resistor solver, multicast schema) works unchanged.

use crate::id::DeviceTypeId;

/// A 16-bit vendor identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VendorId(pub u16);

/// Hierarchical device class (the top nibble of the product field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Environmental or physical sensors.
    Sensor,
    /// Actuators (relays, motors, displays).
    Actuator,
    /// Communication peripherals (secondary radios).
    Radio,
    /// Identification devices (RFID, NFC readers).
    Identification,
    /// Composite devices exposing several functions.
    Composite,
    /// Anything else.
    Other(u8),
}

impl DeviceClass {
    /// The class nibble.
    pub fn nibble(self) -> u8 {
        match self {
            DeviceClass::Sensor => 0x1,
            DeviceClass::Actuator => 0x2,
            DeviceClass::Radio => 0x3,
            DeviceClass::Identification => 0x4,
            DeviceClass::Composite => 0x5,
            DeviceClass::Other(n) => n & 0x0f,
        }
    }

    /// Inverse of [`DeviceClass::nibble`].
    pub fn from_nibble(n: u8) -> DeviceClass {
        match n & 0x0f {
            0x1 => DeviceClass::Sensor,
            0x2 => DeviceClass::Actuator,
            0x3 => DeviceClass::Radio,
            0x4 => DeviceClass::Identification,
            0x5 => DeviceClass::Composite,
            other => DeviceClass::Other(other),
        }
    }
}

/// A structured µPnP identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructuredId {
    /// Who makes the peripheral.
    pub vendor: VendorId,
    /// What kind of peripheral it is.
    pub class: DeviceClass,
    /// The vendor-scoped product number (12 bits).
    pub product: u16,
}

impl StructuredId {
    /// Builds a structured id.
    ///
    /// # Panics
    ///
    /// Panics if `product` exceeds 12 bits.
    pub fn new(vendor: VendorId, class: DeviceClass, product: u16) -> StructuredId {
        assert!(product < 0x1000, "product id must fit 12 bits");
        StructuredId {
            vendor,
            class,
            product,
        }
    }

    /// Flattens to the wire/hardware identifier.
    pub fn device_id(self) -> DeviceTypeId {
        let low = ((self.class.nibble() as u32) << 12) | self.product as u32;
        DeviceTypeId::new(((self.vendor.0 as u32) << 16) | low)
    }

    /// Parses a flat identifier into its structured parts.
    pub fn from_device_id(id: DeviceTypeId) -> StructuredId {
        let raw = id.raw();
        StructuredId {
            vendor: VendorId((raw >> 16) as u16),
            class: DeviceClass::from_nibble(((raw >> 12) & 0x0f) as u8),
            product: (raw & 0x0fff) as u16,
        }
    }

    /// The multicast-style wildcard matching every product of a vendor:
    /// useful for vendor-scoped discovery sweeps.
    pub fn vendor_range(vendor: VendorId) -> (DeviceTypeId, DeviceTypeId) {
        (
            DeviceTypeId::new((vendor.0 as u32) << 16),
            DeviceTypeId::new(((vendor.0 as u32) << 16) | 0xffff),
        )
    }
}

impl std::fmt::Display for StructuredId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:04x}:{:?}:{:03x}",
            self.vendor.0, self.class, self.product
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_fields() {
        let s = StructuredId::new(VendorId(0xed3f), DeviceClass::Sensor, 0xac1);
        let id = s.device_id();
        let back = StructuredId::from_device_id(id);
        assert_eq!(back.vendor, VendorId(0xed3f));
        assert_eq!(back.class, DeviceClass::Sensor);
        assert_eq!(back.product, 0xac1);
    }

    #[test]
    fn class_nibbles_roundtrip() {
        for n in 0..16u8 {
            assert_eq!(DeviceClass::from_nibble(n).nibble(), n);
        }
    }

    #[test]
    fn structured_ids_remain_solvable() {
        // The whole point: the resistor solver and codec work unchanged.
        let s = StructuredId::new(VendorId(0x00aa), DeviceClass::Actuator, 0x123);
        let solved = crate::solver::solve_resistors(s.device_id()).unwrap();
        assert!(crate::solver::verify_solution(&solved));
    }

    #[test]
    fn vendor_range_brackets_products() {
        let (lo, hi) = StructuredId::vendor_range(VendorId(0x1234));
        let s = StructuredId::new(VendorId(0x1234), DeviceClass::Composite, 0x7ff);
        assert!(lo <= s.device_id() && s.device_id() <= hi);
        let other = StructuredId::new(VendorId(0x1235), DeviceClass::Sensor, 0);
        assert!(other.device_id() > hi);
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn oversized_product_panics() {
        StructuredId::new(VendorId(1), DeviceClass::Sensor, 0x1000);
    }

    #[test]
    fn display_is_compact() {
        let s = StructuredId::new(VendorId(0xbeef), DeviceClass::Radio, 0x042);
        assert_eq!(s.to_string(), "beef:Radio:042");
    }
}
