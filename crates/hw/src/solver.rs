//! The resistor-set solver — the paper's "simple online tool" (§3.3) that
//! "generates the resistor set that is required to encode the assigned
//! device identifier".
//!
//! For each of the four ID bytes the solver computes the target resistance
//! `R = T(byte) / (k·C)` and realises it as a *series pair* of purchasable
//! E-series parts (Figure 4 pads `RnA`/`RnB`): a coarse E24 element plus an
//! E96 trim element. A single E-series part cannot do the job — adjacent
//! E96 values are ≈2.4 % apart while the codec guard band is ±0.38 % — so
//! pair placement is what makes the geometric code realisable at all.

use upnp_sim::SimRng;

use crate::calib::BoardCalibration;
use crate::components::{Resistor, ResistorPair, ToleranceClass};
use crate::encoding::PulseCodec;
use crate::eseries::Series;
use crate::id::DeviceTypeId;

/// Maximum relative placement error the solver accepts between the pair's
/// nominal resistance and the target. Placement consumes part of the codec
/// guard band, so it must stay well below it.
pub const MAX_PLACEMENT_ERROR: f64 = 0.0005;

/// Solver failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The identifier is one of the two reserved values (§5.1) and must not
    /// be encoded on hardware.
    ReservedId,
    /// No purchasable pair landed within [`MAX_PLACEMENT_ERROR`] of the
    /// target for the given stage.
    NoPair {
        /// The T1..T4 stage (0-based) that could not be realised.
        stage: u8,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::ReservedId => write!(f, "identifier is reserved"),
            SolveError::NoPair { stage } => {
                write!(f, "no purchasable resistor pair for stage {stage}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// The solved parts for one multivibrator stage.
#[derive(Debug, Clone, Copy)]
pub struct SolvedStage {
    /// The byte this stage encodes.
    pub byte: u8,
    /// Target resistance in ohms.
    pub target_ohms: f64,
    /// Nominal value of the coarse (pad A) element.
    pub coarse_ohms: f64,
    /// Nominal value of the trim (pad B) element.
    pub trim_ohms: f64,
    /// Relative placement error of `coarse + trim` versus the target.
    pub placement_error: f64,
}

impl SolvedStage {
    /// Samples an as-manufactured pair at the given tolerance class.
    pub fn sample_pair(&self, tolerance: ToleranceClass, rng: &mut SimRng) -> ResistorPair {
        ResistorPair {
            coarse: Resistor::sample(self.coarse_ohms, tolerance, rng),
            trim: Resistor::sample(self.trim_ohms, tolerance, rng),
        }
    }

    /// An ideal pair with exact nominal values.
    pub fn ideal_pair(&self) -> ResistorPair {
        ResistorPair {
            coarse: Resistor::ideal(self.coarse_ohms),
            trim: Resistor::ideal(self.trim_ohms),
        }
    }
}

/// A fully solved identifier: four stages ready for the bill of materials.
#[derive(Debug, Clone)]
pub struct SolvedChannel {
    /// The identifier these parts encode.
    pub device_id: DeviceTypeId,
    /// Per-stage part selection (T1..T4).
    pub stages: [SolvedStage; 4],
}

impl SolvedChannel {
    /// Renders the bill of materials as the online tool would print it.
    pub fn bill_of_materials(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "µPnP resistor set for {}", self.device_id);
        for (i, s) in self.stages.iter().enumerate() {
            let _ = writeln!(
                out,
                "  R{}A = {:>9.0} Ω   R{}B = {:>8.1} Ω   (byte {:#04x}, err {:+.4}%)",
                i + 1,
                s.coarse_ohms,
                i + 1,
                s.trim_ohms,
                s.byte,
                s.placement_error * 100.0
            );
        }
        out
    }
}

/// Solves the four resistor pairs encoding `device_id`.
///
/// # Errors
///
/// Returns [`SolveError::ReservedId`] for the two reserved identifiers and
/// [`SolveError::NoPair`] if a stage cannot be realised within
/// [`MAX_PLACEMENT_ERROR`] (does not happen for the paper codec; guarded by
/// an exhaustive test).
pub fn solve_resistors(device_id: DeviceTypeId) -> Result<SolvedChannel, SolveError> {
    if device_id.is_reserved() {
        return Err(SolveError::ReservedId);
    }
    let codec = PulseCodec::paper();
    let kc = BoardCalibration::kc_nominal();
    let bytes = device_id.bytes();
    let mut stages = [None; 4];
    for (i, &byte) in bytes.iter().enumerate() {
        let target = codec.encode(byte).as_secs_f64() / kc;
        let stage = solve_stage(i as u8, byte, target)?;
        stages[i] = Some(stage);
    }
    Ok(SolvedChannel {
        device_id,
        stages: stages.map(|s| s.expect("all stages solved")),
    })
}

/// Solves one stage: search coarse E96 candidates below the target and trim
/// each with the nearest E96 value; keep the best pair.
///
/// The coarse grid must be E96 rather than E24: the best pair error scales
/// with the coarse grid density, and an E24 coarse grid leaves some byte
/// values with no pair under [`MAX_PLACEMENT_ERROR`].
fn solve_stage(stage: u8, byte: u8, target_ohms: f64) -> Result<SolvedStage, SolveError> {
    let mut best: Option<SolvedStage> = None;

    // Candidate coarse values: every E96 value in [0.5, 0.9995]·target.
    for coarse in Series::E96.values(3, 6) {
        if coarse < 0.5 * target_ohms || coarse > 0.9995 * target_ohms {
            continue;
        }
        let remainder = target_ohms - coarse;
        let Some(trim) = Series::E96.nearest(remainder, 0, 6) else {
            continue;
        };
        let nominal = coarse + trim;
        let err = (nominal - target_ohms) / target_ohms;
        if err.abs() <= MAX_PLACEMENT_ERROR
            && best.is_none_or(|b| err.abs() < b.placement_error.abs())
        {
            best = Some(SolvedStage {
                byte,
                target_ohms,
                coarse_ohms: coarse,
                trim_ohms: trim,
                placement_error: err,
            });
        }
    }
    best.ok_or(SolveError::NoPair { stage })
}

/// Verifies that a solved channel decodes back to its identifier under
/// ideal components — a self-check the online tool runs before emitting a
/// bill of materials.
pub fn verify_solution(solved: &SolvedChannel) -> bool {
    let codec = PulseCodec::paper();
    let kc = BoardCalibration::kc_nominal();
    let mut bytes = [0u8; 4];
    for (i, s) in solved.stages.iter().enumerate() {
        let t = upnp_sim::SimDuration::from_secs_f64((s.coarse_ohms + s.trim_ohms) * kc);
        match codec.decode(t) {
            Ok(b) => bytes[i] = b,
            Err(_) => return false,
        }
    }
    DeviceTypeId::from_bytes(bytes) == solved.device_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::prototypes;

    #[test]
    fn prototype_ids_solve_and_verify() {
        for id in prototypes::ALL {
            let solved = solve_resistors(id).unwrap();
            assert!(verify_solution(&solved), "{id} failed verification");
            for s in &solved.stages {
                assert!(s.placement_error.abs() <= MAX_PLACEMENT_ERROR);
            }
        }
    }

    #[test]
    fn every_byte_value_is_realisable() {
        // Exhaustive over the byte space: each code point must be reachable
        // with purchasable parts. This is the guarantee behind
        // `SolveError::NoPair` "does not happen".
        let codec = PulseCodec::paper();
        let kc = BoardCalibration::kc_nominal();
        for byte in 0..=255u8 {
            let target = codec.encode(byte).as_secs_f64() / kc;
            let s = solve_stage(0, byte, target)
                .unwrap_or_else(|_| panic!("byte {byte} unrealisable (target {target:.0} Ω)"));
            assert!(s.placement_error.abs() <= MAX_PLACEMENT_ERROR);
        }
    }

    #[test]
    fn reserved_ids_are_refused() {
        assert_eq!(
            solve_resistors(DeviceTypeId::ALL_PERIPHERALS).unwrap_err(),
            SolveError::ReservedId
        );
        assert_eq!(
            solve_resistors(DeviceTypeId::ALL_CLIENTS).unwrap_err(),
            SolveError::ReservedId
        );
    }

    #[test]
    fn resistances_are_in_a_practical_range() {
        // All stage resistances should be hundreds of kΩ: large enough for
        // cheap precision parts, small enough to ignore parasitics.
        let solved = solve_resistors(DeviceTypeId::new(0x00ff_7f80)).unwrap();
        for s in &solved.stages {
            assert!(
                s.target_ohms > 50_000.0 && s.target_ohms < 2_000_000.0,
                "stage target {} Ω",
                s.target_ohms
            );
        }
    }

    #[test]
    fn bill_of_materials_mentions_all_pads() {
        let solved = solve_resistors(prototypes::ID20LA).unwrap();
        let bom = solved.bill_of_materials();
        for pad in ["R1A", "R1B", "R2A", "R2B", "R3A", "R3B", "R4A", "R4B"] {
            assert!(bom.contains(pad), "missing {pad} in:\n{bom}");
        }
        assert!(bom.contains("0xed3f0ac1"));
    }

    #[test]
    fn random_ids_solve() {
        let mut rng = upnp_sim::SimRng::seed(77);
        for _ in 0..200 {
            let id = DeviceTypeId::new(rng.next_u32());
            if id.is_reserved() {
                continue;
            }
            let solved = solve_resistors(id).expect("random id must solve");
            assert!(verify_solution(&solved));
        }
    }
}
