//! Calibration constants for the identification circuit.
//!
//! Every number the reproduction cannot take from the paper directly is
//! concentrated here, with the paper-reported observable it was calibrated
//! against. The §6.1 targets are:
//!
//! * identification scan of the four prototype peripherals: 220–300 ms;
//! * identification energy: 2.48–6.756 mJ (our model lands the upper end
//!   within a few percent; the lower end of our band is ~4.3 mJ — see
//!   EXPERIMENTS.md §6.1 for the discrepancy discussion);
//! * board draw while scanning: "an average of 7 mA at 3.3 V" — our model
//!   averages ≈6 mA during a scan.

use upnp_sim::SimDuration;

/// Number of peripheral channels on the control board (Figures 5 and 6 show
/// three: A, B and C).
pub const CHANNEL_COUNT: usize = 3;

/// Shortest encodable pulse (byte value 0).
pub const T_MIN: SimDuration = SimDuration::from_micros(15_750);

/// Geometric ratio between adjacent byte values.
///
/// The byte→duration map must be geometric because all error sources
/// (component tolerance, temperature drift) are *multiplicative* in
/// `T = k·R·C`. The decode guard band is half a step in log-space:
/// `ln(1.0076)/2 ≈ 0.38 %`, which covers the worst-case component budget
/// (±0.1 % resistor pair, ±0.1 % calibrated `k·C`, ±0.05 % comparator, plus
/// thermal drift near room temperature) with ≈1.4× margin.
pub const RATIO: f64 = 1.0076;

/// Time for the start trigger and channel-select logic to settle before the
/// first channel slot begins.
pub const T_TRIGGER: SimDuration = SimDuration::from_micros(2_000);

/// How long an enabled channel waits for the first rising edge before
/// declaring the slot empty (no peripheral connected). Chosen conservatively
/// at ≈1.8× [`T_MIN`] so a slow first pulse is never misread as "empty".
pub const T_EMPTY: SimDuration = SimDuration::from_micros(28_500);

/// Settling time after the fourth pulse of an occupied channel before the
/// multivibrator bank is handed to the next channel.
pub const T_SETTLE: SimDuration = SimDuration::from_micros(1_000);

/// Monostable constant `k` in `T = k·R·C` (a 555-style monostable has
/// `T = 1.1·R·C`).
pub const MONOSTABLE_K: f64 = 1.1;

/// Nominal timing capacitance on the control board, farads (fixed parts,
/// §3.1).
pub const C_NOMINAL: f64 = 100e-9;

/// Supply voltage of the control board.
pub const SUPPLY_V: f64 = 3.3;

/// Board power while a scan is in progress but no pulse is high
/// (control logic, channel mux, comparators).
pub const P_SCAN_BASE_W: f64 = 5.0e-3;

/// Additional power while a multivibrator output is high (RC charge path
/// plus output stage).
pub const P_PULSE_W: f64 = 20.0e-3;

/// Timer quantisation of the pulse-width measurement: a 16 MHz timer with a
/// /8 prescaler ticks every 0.5 µs.
pub const TIMER_TICK: SimDuration = SimDuration::from_nanos(500);

/// Relative residual error of the per-board `k·C` factory calibration.
///
/// Capacitors are the least precise passive part, so a raw ±1 % (or worse)
/// C would blow the decode budget. A board self-measures each
/// multivibrator's `k·C` against its crystal at manufacture and stores the
/// correction; what remains is the measurement residual.
pub const KC_CALIBRATION_RESIDUAL: f64 = 0.0005;

/// Relative spread of the monostable constant `k` between parts.
///
/// `k` spread does not need its own budget line beyond this: the factory
/// `k·C` calibration measures the *product*, so only the residual above
/// survives. The constant here models drift of `k` after calibration.
pub const K_TOLERANCE: f64 = 0.0002;

/// Derived: the longest encodable pulse (byte value 255).
pub fn t_max() -> SimDuration {
    t_for_byte(255)
}

/// Derived: the ideal (nominal-component) pulse duration for a byte value.
pub fn t_for_byte(byte: u8) -> SimDuration {
    SimDuration::from_secs_f64(T_MIN.as_secs_f64() * RATIO.powi(byte as i32))
}

/// A per-board factory calibration record: the measured `k·C` product of
/// each multivibrator, used to normalise measured pulse widths before
/// decoding.
#[derive(Debug, Clone)]
pub struct BoardCalibration {
    /// Measured `k·C` per multivibrator (seconds per ohm).
    pub kc_measured: [f64; 4],
}

impl BoardCalibration {
    /// The nominal `k·C` product (seconds per ohm).
    pub fn kc_nominal() -> f64 {
        MONOSTABLE_K * C_NOMINAL
    }

    /// A perfect calibration (used for unit tests and ablations).
    pub fn ideal() -> Self {
        BoardCalibration {
            kc_measured: [Self::kc_nominal(); 4],
        }
    }

    /// Normalises a measured pulse width from multivibrator `stage` to the
    /// nominal `k·C`, cancelling that board's component error.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= 4`.
    pub fn normalise(&self, stage: usize, measured: SimDuration) -> SimDuration {
        let factor = Self::kc_nominal() / self.kc_measured[stage];
        SimDuration::from_secs_f64(measured.as_secs_f64() * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_durations_are_monotone() {
        let mut prev = SimDuration::ZERO;
        for b in 0..=255u8 {
            let t = t_for_byte(b);
            assert!(t > prev, "byte {b} not monotone");
            prev = t;
        }
    }

    #[test]
    fn t_min_and_max_span() {
        assert_eq!(t_for_byte(0), T_MIN);
        let span = t_max().as_secs_f64() / T_MIN.as_secs_f64();
        // RATIO^255 ≈ 6.9 (up to nanosecond quantisation of SimDuration).
        assert!((span - RATIO.powi(255)).abs() < 1e-6);
        assert!(span > 6.0 && span < 8.0, "span {span}");
    }

    #[test]
    fn guard_band_covers_component_budget() {
        // Worst-case multiplicative error budget (resistor pair placement +
        // tolerance, kC calibration residual, k spread, thermal at ±10 °C).
        let resistor = 0.001 + 0.0005; // part tolerance + placement
        let kc = KC_CALIBRATION_RESIDUAL;
        let k = K_TOLERANCE;
        // Board and peripheral within ±10 °C of the calibration temperature.
        let thermal = 10.0 * (50e-6 + 30e-6);
        let budget = resistor + kc + k + thermal;
        let half_step = RATIO.ln() / 2.0;
        assert!(
            budget < half_step,
            "budget {budget} exceeds half-step {half_step}"
        );
    }

    #[test]
    fn prototype_scan_time_window_matches_paper() {
        // One occupied channel, two empty: fixed part plus the four pulses.
        use crate::id::prototypes;
        for id in prototypes::ALL {
            let pulses: SimDuration = id.bytes().iter().map(|&b| t_for_byte(b)).sum();
            let total = T_TRIGGER + T_EMPTY * (CHANNEL_COUNT as u64 - 1) + T_SETTLE + pulses;
            let ms = total.as_millis_f64();
            assert!(
                (210.0..=310.0).contains(&ms),
                "{id}: scan {ms:.1} ms outside the paper's 220-300 ms window"
            );
        }
    }

    #[test]
    fn calibration_normalisation_cancels_board_error() {
        let mut cal = BoardCalibration::ideal();
        // Board 2 % slow on stage 1.
        cal.kc_measured[1] = BoardCalibration::kc_nominal() * 1.02;
        let true_t = t_for_byte(100);
        let measured = SimDuration::from_secs_f64(true_t.as_secs_f64() * 1.02);
        let norm = cal.normalise(1, measured);
        let rel = (norm.as_secs_f64() - true_t.as_secs_f64()).abs() / true_t.as_secs_f64();
        // Residual bounded by nanosecond quantisation of SimDuration.
        assert!(rel < 1e-6, "residual {rel}");
    }

    #[test]
    fn scan_energy_upper_end_matches_paper() {
        // The longest prototype scan (BMP180) should cost ≈the paper's
        // 6.756 mJ maximum.
        use crate::id::prototypes;
        let pulses: SimDuration = prototypes::BMP180
            .bytes()
            .iter()
            .map(|&b| t_for_byte(b))
            .sum();
        let total = T_TRIGGER + T_EMPTY * (CHANNEL_COUNT as u64 - 1) + T_SETTLE + pulses;
        let energy_mj =
            (P_SCAN_BASE_W * total.as_secs_f64() + P_PULSE_W * pulses.as_secs_f64()) * 1e3;
        assert!(
            (5.5..=7.5).contains(&energy_mj),
            "BMP180 scan energy {energy_mj:.3} mJ, paper max 6.756 mJ"
        );
    }
}
