//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6) from the reproduction.
//!
//! Each `exp_*` function returns the rendered rows/series the paper
//! reports, alongside the paper's own numbers for comparison. The
//! `experiments` binary prints them; the Criterion benches reuse the same
//! code paths for wall-clock measurement; EXPERIMENTS.md records
//! paper-versus-measured.

pub mod ablations;
pub mod experiments;

pub use experiments::*;
