//! Regenerates the paper's tables and figures from the reproduction.
//!
//! ```text
//! experiments                 # everything, paper order
//! experiments --fig 3|5|12    # one figure
//! experiments --table 2|3|4   # one table
//! experiments --sec 6.1|6.2|8 # one text-section result
//! experiments --ablations     # design-decision ablations
//! experiments --quick         # everything, reduced sample counts
//! ```

use upnp_bench::{ablations, experiments};
use upnp_hw::id::prototypes;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => experiments::run_all(64, 10),
        ["--quick"] => experiments::run_all(8, 3),
        ["--fig", "3"] => experiments::exp_fig3_waveform(prototypes::ID20LA),
        ["--fig", "5"] => experiments::exp_fig5_waveform(),
        ["--fig", "12"] => experiments::exp_fig12(64),
        ["--table", "2"] => experiments::exp_table2(),
        ["--table", "3"] => experiments::exp_table3(),
        ["--table", "4"] => experiments::exp_table4(10),
        ["--sec", "6.1"] => experiments::exp_sec61_identification(),
        ["--sec", "6.2"] => experiments::exp_sec62_vm(),
        ["--sec", "8"] => experiments::exp_sec8_total(),
        ["--ablations"] => ablations::run_all(),
        ["--multihop"] => experiments::exp_multihop_discovery(6),
        _ => {
            eprintln!(
                "usage: experiments [--quick | --fig 3|5|12 | --table 2|3|4 | --sec 6.1|6.2|8 | --ablations | --multihop]"
            );
            std::process::exit(2);
        }
    };
    print!("{out}");
}
