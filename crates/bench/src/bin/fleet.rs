//! Fleet-scale benchmark: discovery waves, churn storms, steady-state
//! workloads and flash crowds (through the edge-cache tier) at
//! 100/1k/5k/25k/100k nodes, with machine-readable output and a CI
//! regression gate.
//!
//! ```text
//! fleet                                  # all scenarios, full size sweep
//! fleet --nodes 100,1000                 # restrict the size sweep
//! fleet --shards 1,4                     # sequential + 4-way sharded
//! fleet --scenario discovery             # one scenario only
//! fleet --scenario soak                  # nightly chaos soak (needs
//!                                        #   --features soak)
//! fleet --scenario soak --chaos deep     # deep fault profile: interior
//!                                        #   partitions, MCU crashes,
//!                                        #   delay/duplicate links,
//!                                        #   standby blackouts
//! fleet --scenario soak --chaos gray     # gray failures on top of deep:
//!                                        #   10x-latency / half-PRR links,
//!                                        #   asymmetric cuts, a crawling
//!                                        #   cache; recovery-p99 SLOs
//! fleet --seed 42                        # reseed the whole run
//! fleet --out BENCH_fleet.json           # write the JSON report
//! fleet --gate bench/baseline.json       # exit 1 on regression
//! fleet --trace-out BENCH_trace.json     # run traced; write the span
//!                                        #   set as Chrome trace-event
//!                                        #   JSON (loads in Perfetto)
//! fleet --trace-overhead                 # gate the cost of tracing at
//!                                        #   25k-Thing discovery
//! ```
//!
//! `--trace-out` flips the deterministic tracer on for every fleet in
//! the sweep and writes the merged span set as Chrome trace-event JSON
//! (Perfetto's legacy-JSON importer loads it directly). Soak rows that
//! end green export only their *exemplar* traces — the slowest recovery
//! per fault family — so the artifact stays readable; a red soak keeps
//! everything. Traced runs also keep a bounded flight-recorder window
//! of the most recent spans: when the sharded/sequential identity check
//! or a soak gate fails, the window is dumped to `BENCH_flight.json`
//! for CI to upload next to the failure.
//!
//! When the sweep covers both a sequential (`shards = 1`) and a sharded
//! row of the same size, the run *hard-fails* unless every deterministic
//! metric — frames, virtual time, latency distribution, joules, payload
//! and cache/origin counters — and the world fingerprint are
//! bit-identical between them: the sharded simulator is only allowed to
//! be faster, never different. Flash-crowd rows (which run through the
//! edge-cache tier) additionally face absolute floors: the caches must
//! serve ≥ 90 % of driver uploads (at ≥ 1000 Things), and coalescing
//! must hold the origin to at most caches × device-types fetch sessions.
//! Chaos-soak rows (nightly profile: built with `--features soak`, run
//! with `--scenario soak`) hard-fail unless every whole-soak invariant
//! held — exactly-once discovery, cache coherence, bounded Manager
//! retention — and the process peak RSS stayed flat across the virtual
//! day of fault injection. `--chaos deep` widens the schedule with the
//! ISSUE-8 families (interior-router partitions, mid-install MCU
//! crashes, delay/duplicate links, standby blackouts); those rows are
//! labelled `soak-deep` and additionally hard-fail unless the families
//! left evidence — torn images rejected and refetched, blackout windows
//! detected as unserved Things and then repaired. `--chaos gray` layers
//! gray failures on top of `deep` — links degraded to 10× latency or
//! half their PRR, asymmetric one-direction cuts, one cache serving at
//! a crawl; those rows are labelled `soak-gray` and hard-fail if any
//! epoch carried zero degraded-link deliveries (the schedule silently
//! stopped firing). Every soak row embeds per-fault-family
//! recovery-latency histograms (injection → first successful serve
//! after the heal), and when a baseline is supplied their per-family
//! p99s are gated against it the same way RSS flatness is gated
//! absolutely.
//!
//! The gate checks the 1k- and 5k-node discovery wall-clocks against the
//! checked-in baseline (>25 % is a failure), and the zero-copy payload
//! allocation counters on every discovery row shared with the baseline
//! (deterministic, same 25 % threshold — a copy snuck into the data plane
//! shows up here long before it shows up in wall-clock noise).
//! Virtual-time and traffic drift on any row is reported as a warning,
//! since those are deterministic and only move when behaviour genuinely
//! changes. Every row records the process peak RSS and the host's CPU
//! count so memory and parallelism are readable from the artifact.

use std::process::ExitCode;

use serde::{Deserialize, Serialize};
use upnp_core::chaos::SoakReport;
use upnp_core::fleet::{Fleet, FleetConfig, ScenarioMetrics, ShardedFleet};
use upnp_core::world::SimWorld;
use upnp_trace::{chrome_trace_json, FlightRecorder, Span, FLIGHT_RECORDER_CAPACITY};
#[cfg(feature = "soak")]
use upnp_trace::{filter_traces, TraceId};

/// The scenario the regression gates anchor on.
const GATE_SCENARIO: &str = "discovery";
/// Fleet sizes whose discovery wall-clock is gated. The 25k/100k rows are
/// swept and recorded but not wall-gated: they run tens of seconds and CI
/// runner noise at that scale would page people for nothing — their
/// allocation counters (deterministic) are gated instead.
const GATE_WALL_THINGS: &[usize] = &[1000, 5000];
/// Wall-clock regression tolerance (CI runners are noisy; virtual-time
/// metrics are checked for exact drift separately).
const GATE_FACTOR: f64 = 1.25;
/// Sharded wall-clock gate rows `(things, shards)` — checked when both
/// the current run and the baseline carry them.
const GATE_WALL_SHARDED: &[(usize, usize)] = &[(1000, 4)];
/// Edge caches fronting the origin in the flash-crowd scenario rows.
const FLASH_CACHES: usize = 8;
/// Floor on the fraction of flash-crowd driver uploads that must be
/// served by the cache tier rather than the origin (absolute gate, no
/// baseline needed — the counters are deterministic).
const FLASH_CACHE_SERVED_FLOOR: f64 = 0.90;
/// Smallest fleet the served-ratio floor applies to: below this the
/// fixed coalescing cost (caches × device types fetch sessions) is a
/// large fraction of a tiny crowd and the ratio is meaningless — the
/// absolute coalescing bound still applies at every size.
const FLASH_FLOOR_MIN_THINGS: usize = 1000;
/// Report schema version: bumped to 2 when rows gained `shards` and
/// `fingerprint` (PR 4), to 3 when they gained `peak_rss_bytes`/`cpus`
/// and the metrics gained the distribution-tier counters (PR 5), to 4
/// when they gained `faults_injected`/`soak_ticks` and the optional
/// embedded `soak` report (PR 6), to 5 when the report gained the
/// per-driver `drivers` image-size table (optimising compiler), to 6
/// when the soak report gained the deep-chaos counters (interior
/// partitions, MCU crashes with torn-image rejections, standby
/// blackouts with unserved-Thing windows, delay/duplicate link frames,
/// per-epoch follower drains) and soak rows split into `soak` /
/// `soak-deep` profiles, and to 7 when the soak report gained the
/// gray-failure counters (degraded hops, aggregate and per-epoch) and
/// per-fault-family recovery-latency histograms, and `--chaos gray`
/// rows got the `soak-gray` profile, and to 8 when rows gained
/// `trace_spans` and the unified `metrics_table` (every subsystem's
/// counters in one labelled registry), and the soak report gained
/// recovery-trace exemplars and the attribution-mismatch counter;
/// older baselines must be regenerated.
const SCHEMA: u32 = 8;
/// Fleet size for the tracing-overhead gate (`--trace-overhead`):
/// context carriage is always-on, so the discovery wave at this scale
/// is where a hidden cost would show.
const TRACE_OVERHEAD_THINGS: usize = 25_000;
/// With tracing *disabled* the wall-clock must stay within this factor
/// of the baseline's discovery row at the same size — the always-on
/// context carriage must cost ~nothing.
const TRACE_OVERHEAD_DISABLED_FACTOR: f64 = 1.05;
/// With tracing *enabled* (every span recorded) the wall-clock must
/// stay within this factor of the same reference.
const TRACE_OVERHEAD_ENABLED_FACTOR: f64 = 1.15;
/// Where the flight-recorder window lands when the identity check or a
/// soak gate fails on a traced run — CI uploads it as an artifact.
const FLIGHT_DUMP_PATH: &str = "BENCH_flight.json";
/// Edge caches fronting the origin in the chaos-soak rows.
#[cfg(feature = "soak")]
const SOAK_CACHES: usize = FLASH_CACHES;
/// Peak-RSS flatness gate for soak rows: the process high-water mark at
/// soak end must stay within this factor of the mark after the first
/// epoch (plus a small absolute slack so tiny fleets aren't gated on
/// allocator noise). A day of fault churn must not accrete state.
const SOAK_RSS_FLAT_FACTOR: f64 = 1.5;
/// Absolute slack for the flatness gate, kilobytes.
const SOAK_RSS_FLAT_SLACK_KB: u64 = 32 * 1024;
/// Per-family p99 recovery-latency gate: a soak row's p99 (virtual
/// time, deterministic) must stay within this factor of the baseline's.
/// The histogram resolves p99 to a power-of-two bucket edge, so one
/// bucket of movement is exactly ×2 — the factor tolerates that single
/// step and fails anything beyond it.
const SOAK_RECOVERY_P99_FACTOR: f64 = 2.0;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    schema: u32,
    seed: u64,
    /// Thing counts the sweep covered.
    sizes: Vec<usize>,
    /// Shipped-driver image sizes under the optimising compiler —
    /// deterministic compiler outputs, gated against the baseline so a
    /// pass regression (images growing back) fails CI.
    drivers: Vec<DriverSizeRow>,
    scenarios: Vec<ScenarioRow>,
}

/// One shipped driver's compiled-image footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DriverSizeRow {
    /// Driver name (`upnp_dsl::drivers::ALL` key).
    name: String,
    /// Device id the image was compiled for (stable across runs).
    device_id: u32,
    /// Serialized size of the optimised image — what the (19) chunked
    /// transfer actually ships.
    image_bytes: usize,
    /// 64-byte chunks needed to ship the optimised image.
    chunks: usize,
    /// Serialized size with the optimiser off, for the ablation column.
    unopt_bytes: usize,
}

/// Compiles every shipped driver at both optimisation levels and
/// records the shipped footprint. Pure compiler output: no seed, no
/// fleet, bit-stable across hosts.
fn driver_sizes() -> Vec<DriverSizeRow> {
    upnp_dsl::drivers::ALL
        .iter()
        .enumerate()
        .map(|(i, (name, src))| {
            let device_id = i as u32 + 1;
            let full = upnp_dsl::compile_source_with(src, device_id, upnp_dsl::OptLevel::Full)
                .expect("shipped driver compiles")
                .to_bytes();
            let none = upnp_dsl::compile_source_with(src, device_id, upnp_dsl::OptLevel::None)
                .expect("shipped driver compiles")
                .to_bytes();
            DriverSizeRow {
                name: (*name).to_string(),
                device_id,
                image_bytes: full.len(),
                chunks: full.len().div_ceil(upnp_net::msg::DRIVER_CHUNK_PAYLOAD),
                unopt_bytes: none.len(),
            }
        })
        .collect()
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioRow {
    /// Things in the fleet (the `nodes` field inside `metrics` also
    /// counts the manager, clients and edge caches).
    things: usize,
    /// Shard (worker thread) count: 1 is the sequential simulator.
    shards: usize,
    /// Edge caches fronting the origin (0 for the paper's single-origin
    /// deployment).
    caches: usize,
    /// Cumulative world fingerprint after this scenario — must be
    /// identical across shard counts.
    fingerprint: u64,
    /// Process peak RSS (VmHWM) after the scenario, bytes. Monotone
    /// across rows (a high-water mark) and host-dependent — recorded so
    /// the per-shard-memory bottleneck is observable from CI artifacts,
    /// never gated or compared for identity.
    peak_rss_bytes: u64,
    /// CPUs the host exposed to this run (`available_parallelism`) —
    /// lets a reader tell real multi-core sharding numbers from
    /// single-core cache-locality numbers.
    cpus: usize,
    /// Faults injected during the scenario (0 outside soak rows).
    faults_injected: u64,
    /// Scheduler run/pause phases driven (0 outside soak rows).
    soak_ticks: u64,
    /// Spans the deterministic tracer recorded during the scenario —
    /// 0 unless the run was traced (`--trace-out`). Deterministic for a
    /// given seed and identical across shard counts.
    trace_spans: u64,
    /// The unified metrics registry: every subsystem's deterministic
    /// counters (`scenario.*`, `net.*`, `payload.*`, `distro.*`) as one
    /// canonically ordered, labelled table.
    metrics_table: Vec<MetricRow>,
    /// The full chaos-soak report (`null` outside soak rows).
    soak: Option<SoakReport>,
    metrics: ScenarioMetrics,
}

/// One `group.name = value` line of the unified metrics table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MetricRow {
    name: String,
    value: u64,
}

/// Accumulates the traced sweep's artifacts: the spans destined for the
/// Chrome-trace export, and a bounded flight-recorder window of the
/// most recent spans (dumped on identity/gate failure).
struct TraceCollector {
    /// Tracing on for this run (`--trace-out` given)?
    enabled: bool,
    /// Spans kept for the export — green soak rows contribute only
    /// their exemplar traces, everything else contributes in full.
    spans: Vec<Span>,
    recorder: FlightRecorder,
}

impl TraceCollector {
    fn new(enabled: bool) -> Self {
        TraceCollector {
            enabled,
            spans: Vec::new(),
            recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
        }
    }

    /// Drains the world's spans after one scenario; returns the count
    /// (the row's `trace_spans`) and the drained set.
    fn drain<W: SimWorld>(&mut self, fleet: &mut Fleet<W>) -> (u64, Vec<Span>) {
        if !self.enabled {
            return (0, Vec::new());
        }
        let spans = fleet.world.take_spans();
        for s in &spans {
            self.recorder.push(*s);
        }
        (spans.len() as u64, spans)
    }
}

/// Process peak resident set (VmHWM) in bytes; 0 where /proc is absent.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map_or(0, |kb| kb * 1024)
}

/// CPUs available to this process (1 when undetectable).
fn detected_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct Options {
    sizes: Vec<usize>,
    shards: Vec<usize>,
    seed: u64,
    scenario: Option<String>,
    /// Soak fault profile: `day` (PR 6's families), `deep` (adds
    /// interior partitions, MCU crashes, delay/duplicate links and
    /// standby blackouts; rows are labelled `soak-deep`), or `gray`
    /// (deep plus degraded/asymmetric links and a crawling cache; rows
    /// are labelled `soak-gray`).
    chaos: String,
    out: Option<String>,
    gate: Option<String>,
    /// Run with the deterministic tracer on and write the merged span
    /// set as Chrome trace-event JSON to this path.
    trace_out: Option<String>,
    /// Run the tracing-overhead gate (discovery at
    /// [`TRACE_OVERHEAD_THINGS`], tracing off then on).
    trace_overhead: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        sizes: vec![100, 1000, 5000, 25000, 100000],
        shards: vec![1],
        seed: 0x6030,
        scenario: None,
        chaos: "day".into(),
        out: None,
        gate: None,
        trace_out: None,
        trace_overhead: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--nodes" => {
                opts.sizes = value("--nodes")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--nodes: {e}"))?;
                if opts.sizes.is_empty() || opts.sizes.contains(&0) {
                    return Err("--nodes expects positive fleet sizes".into());
                }
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--shards: {e}"))?;
                if opts.shards.is_empty() || opts.shards.contains(&0) {
                    return Err("--shards expects positive shard counts".into());
                }
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scenario" => {
                let s = value("--scenario")?;
                if !["discovery", "churn", "steady", "flash", "soak", "all"].contains(&s.as_str()) {
                    return Err(format!("unknown scenario `{s}`"));
                }
                if s == "soak" && !cfg!(feature = "soak") {
                    return Err("the soak scenario is feature-gated (nightly profile): \
                         rebuild with `--features soak`"
                        .into());
                }
                opts.scenario = (s != "all").then_some(s);
            }
            "--chaos" => {
                let c = value("--chaos")?;
                if !["day", "deep", "gray"].contains(&c.as_str()) {
                    return Err(format!("unknown chaos profile `{c}` (day|deep|gray)"));
                }
                opts.chaos = c;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--gate" => opts.gate = Some(value("--gate")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--trace-overhead" => opts.trace_overhead = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn wants(opts: &Options, scenario: &str) -> bool {
    opts.scenario.as_deref().is_none_or(|s| s == scenario)
}

fn row(
    things: usize,
    shards: usize,
    caches: usize,
    fingerprint: u64,
    trace_spans: u64,
    metrics: ScenarioMetrics,
) -> ScenarioRow {
    print_row(things, shards, &metrics);
    let metrics_table = metrics
        .registry()
        .samples()
        .into_iter()
        .map(|s| MetricRow {
            name: format!("{}.{}", s.group, s.name),
            value: s.value,
        })
        .collect();
    ScenarioRow {
        things,
        shards,
        caches,
        fingerprint,
        peak_rss_bytes: peak_rss_bytes(),
        cpus: detected_cpus(),
        faults_injected: 0,
        soak_ticks: 0,
        trace_spans,
        metrics_table,
        soak: None,
        metrics,
    }
}

/// Runs the selected scenarios against one fleet (sequential or sharded)
/// and appends the rows.
fn run_fleet<W: SimWorld>(
    fleet: &mut Fleet<W>,
    opts: &Options,
    things: usize,
    shards: usize,
    scenarios: &mut Vec<ScenarioRow>,
    trace: &mut TraceCollector,
) {
    // Churn and steady state run against a discovered fleet, so the
    // discovery wave always runs; it is only *reported* if selected.
    let discovery = fleet.discovery_wave();
    let (n, spans) = trace.drain(fleet);
    trace.spans.extend(spans);
    if wants(opts, "discovery") {
        scenarios.push(row(things, shards, 0, fleet.fingerprint(), n, discovery));
    }
    if wants(opts, "churn") {
        let churn = fleet.churn_storm(things / 2);
        let (n, spans) = trace.drain(fleet);
        trace.spans.extend(spans);
        scenarios.push(row(things, shards, 0, fleet.fingerprint(), n, churn));
    }
    if wants(opts, "steady") {
        let steady = fleet.steady_state(things);
        let (n, spans) = trace.drain(fleet);
        trace.spans.extend(spans);
        scenarios.push(row(things, shards, 0, fleet.fingerprint(), n, steady));
    }
}

/// Runs the chaos soak (one virtual day of seeded fault injection: cache
/// crashes mid-transfer, root↔cache partitions, primary→standby
/// failover, battery churn) on its own fleet fronted by [`SOAK_CACHES`]
/// caches and a hot-standby Manager. Nightly profile — only built with
/// the `soak` feature, and only run when `--scenario soak` is selected.
#[cfg(feature = "soak")]
fn run_soak<W: SimWorld>(
    fleet: &mut Fleet<W>,
    opts: &Options,
    things: usize,
    shards: usize,
    scenarios: &mut Vec<ScenarioRow>,
    trace: &mut TraceCollector,
) {
    let chaos = match opts.chaos.as_str() {
        "deep" => upnp_core::chaos::ChaosConfig::deep(opts.seed),
        "gray" => upnp_core::chaos::ChaosConfig::gray(opts.seed),
        _ => upnp_core::chaos::ChaosConfig::day(opts.seed),
    };
    let deep = opts.chaos != "day";
    let gray = opts.chaos == "gray";
    let (mut metrics, report) = fleet.soak_scenario(&chaos);
    let (trace_spans, spans) = trace.drain(fleet);
    if trace.enabled {
        // Green soaks export only the exemplar traces — the slowest
        // recovery per fault family — so the Perfetto artifact stays
        // readable; a red soak keeps the whole span set for debugging.
        let keep: Vec<TraceId> = report
            .recovery_exemplars
            .iter()
            .map(|x| TraceId(x.trace_id))
            .collect();
        if report.invariants_held() && !keep.is_empty() {
            trace.spans.extend(filter_traces(&spans, &keep));
        } else {
            trace.spans.extend(spans);
        }
        for x in &report.recovery_exemplars {
            println!(
                "  exemplar: {} trace {:016x} recovered in {:.0} ms",
                x.family,
                x.trace_id,
                x.latency_ns as f64 / 1e6,
            );
        }
    }
    if deep {
        // Deep and gray rows are distinct scenarios: the fault schedule
        // (and so every deterministic counter) differs per profile, and
        // the baseline must keep each without conflating them.
        metrics.scenario = format!("soak-{}", opts.chaos);
    }
    let mut r = row(
        things,
        shards,
        SOAK_CACHES,
        fleet.fingerprint(),
        trace_spans,
        metrics,
    );
    println!(
        "  soak: {} faults over {} epochs ({} crashes, {} partitions, {} failovers, \
         {} reroots, {} battery deaths), {} followers drained, {} repairs, \
         violations d={} c={} r={}",
        report.faults_injected,
        report.epochs,
        report.cache_crashes,
        report.partitions,
        report.failovers,
        report.reroots,
        report.battery_unplugs,
        report.followers_drained,
        report.repairs,
        report.discovery_violations,
        report.coherence_violations,
        report.retention_violations,
    );
    if deep {
        println!(
            "  deep: {} interior cuts, {} MCU crashes ({} torn images rejected, \
             {} refetched), {} standby blackouts ({} unserved windows, {} Things), \
             {} frames delayed, {} duplicated",
            report.interior_partitions,
            report.thing_crashes,
            report.half_images_rejected,
            report.half_image_refetches,
            report.standby_outages,
            report.unserved_windows,
            report.unserved_things,
            report.frames_delayed,
            report.frames_duplicated,
        );
    }
    if gray {
        println!(
            "  gray: {} hops carried degraded (min/epoch {})",
            report.frames_degraded,
            report.degraded_by_epoch.iter().min().copied().unwrap_or(0),
        );
    }
    let recovered: u64 = report
        .recovery
        .families()
        .iter()
        .map(|(_, h)| h.count)
        .sum();
    if recovered > 0 {
        let p99s: Vec<String> = report
            .recovery
            .families()
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(name, h)| format!("{name} n={} p99={:.0}ms", h.count, h.p99_ms()))
            .collect();
        println!("  recovery: {}", p99s.join(", "));
    }
    r.faults_injected = report.faults_injected;
    r.soak_ticks = report.soak_ticks;
    r.soak = Some(report);
    scenarios.push(r);
}

/// Runs the flash-crowd scenario on its own fleet fronted by
/// [`FLASH_CACHES`] edge caches.
fn run_flash<W: SimWorld>(
    fleet: &mut Fleet<W>,
    things: usize,
    shards: usize,
    scenarios: &mut Vec<ScenarioRow>,
    trace: &mut TraceCollector,
) {
    let flash = fleet.flash_crowd();
    let (n, spans) = trace.drain(fleet);
    trace.spans.extend(spans);
    scenarios.push(row(
        things,
        shards,
        FLASH_CACHES,
        fleet.fingerprint(),
        n,
        flash,
    ));
}

/// Flips the tracer on a freshly built fleet (both backends).
fn traced<W: SimWorld>(mut fleet: Fleet<W>, on: bool) -> Fleet<W> {
    fleet.world.set_tracing(on);
    fleet
}

fn run(opts: &Options, trace: &mut TraceCollector) -> BenchReport {
    let mut scenarios = Vec::new();
    // The soak is opt-in even with the feature compiled: a day of
    // virtual time per (size, shards) pair belongs to the nightly
    // profile, not the default sweep.
    let soak_only = opts.scenario.as_deref() == Some("soak");
    for &things in &opts.sizes {
        for &shards in &opts.shards {
            #[cfg(feature = "soak")]
            if soak_only {
                let config = FleetConfig::new(things)
                    .with_seed(opts.seed)
                    .with_caches(SOAK_CACHES)
                    .with_standby();
                if shards == 1 {
                    let mut fleet = traced(Fleet::build(config), trace.enabled);
                    run_soak(&mut fleet, opts, things, shards, &mut scenarios, trace);
                } else {
                    let mut fleet =
                        traced(ShardedFleet::build_sharded(config, shards), trace.enabled);
                    run_soak(&mut fleet, opts, things, shards, &mut scenarios, trace);
                }
                continue;
            }
            #[cfg(not(feature = "soak"))]
            if soak_only {
                unreachable!("parse_args rejects --scenario soak without the feature");
            }
            // A fresh fleet per (size, shards): scenario metrics are
            // deltas, but the build itself (indices, routing tree)
            // belongs to the configuration.
            let config = FleetConfig::new(things).with_seed(opts.seed);
            if shards == 1 {
                let mut fleet = traced(Fleet::build(config), trace.enabled);
                run_fleet(&mut fleet, opts, things, shards, &mut scenarios, trace);
            } else {
                let mut fleet = traced(ShardedFleet::build_sharded(config, shards), trace.enabled);
                run_fleet(&mut fleet, opts, things, shards, &mut scenarios, trace);
            }
            // Flash crowd runs through the edge-cache tier on a fresh
            // fleet of its own (cold caches, simultaneous cold plugs).
            if wants(opts, "flash") {
                let config = FleetConfig::new(things)
                    .with_seed(opts.seed)
                    .with_caches(FLASH_CACHES);
                if shards == 1 {
                    let mut fleet = traced(Fleet::build(config), trace.enabled);
                    run_flash(&mut fleet, things, shards, &mut scenarios, trace);
                } else {
                    let mut fleet =
                        traced(ShardedFleet::build_sharded(config, shards), trace.enabled);
                    run_flash(&mut fleet, things, shards, &mut scenarios, trace);
                }
            }
        }
    }
    let drivers = driver_sizes();
    println!("driver images (optimising compiler):");
    for d in &drivers {
        println!(
            "  {:>8} | {:>4} B shipped ({} chunks) | {:>4} B unoptimised | -{:.1}%",
            d.name,
            d.image_bytes,
            d.chunks,
            d.unopt_bytes,
            100.0 * (1.0 - d.image_bytes as f64 / d.unopt_bytes as f64),
        );
    }
    BenchReport {
        schema: SCHEMA,
        seed: opts.seed,
        sizes: opts.sizes.clone(),
        drivers,
        scenarios,
    }
}

/// The sharded simulator must be *identical* to the sequential one in
/// every deterministic column — enforced whenever one run covers both.
fn check_shard_identity(report: &BenchReport) -> Result<(), String> {
    for row in &report.scenarios {
        if row.shards == 1 {
            continue;
        }
        let Some(base) = report.scenarios.iter().find(|r| {
            r.shards == 1 && r.things == row.things && r.metrics.scenario == row.metrics.scenario
        }) else {
            eprintln!(
                "warning: {}@{} shards={} has no shards=1 sibling in this run — \
                 the sharded/sequential identity check is NOT enforced for it \
                 (include 1 in --shards to enforce)",
                row.metrics.scenario, row.things, row.shards,
            );
            continue;
        };
        let m = &row.metrics;
        let b = &base.metrics;
        // One deterministic-field list lives in ScenarioMetrics::
        // deterministic_summary (shared with the differential and
        // determinism test suites, so a new metric column is covered
        // everywhere at once); the payload counters are the only
        // deterministic fields outside it (they are process-global in
        // multi-test binaries, but exact in this single-process run).
        let identical = row.fingerprint == base.fingerprint
            && m.deterministic_summary() == b.deterministic_summary()
            && m.payload_allocs == b.payload_allocs
            && m.payload_clones == b.payload_clones;
        if !identical {
            return Err(format!(
                "{}@{} diverges between shards=1 and shards={}: \
                 fingerprint {:#018x} vs {:#018x}, \
                 payload allocs {} vs {}, clones {} vs {},\n  seq: {}\n  shd: {}",
                m.scenario,
                row.things,
                row.shards,
                base.fingerprint,
                row.fingerprint,
                b.payload_allocs,
                m.payload_allocs,
                b.payload_clones,
                m.payload_clones,
                b.deterministic_summary(),
                m.deterministic_summary(),
            ));
        }
        println!(
            "identity ok: {}@{} shards={} matches the sequential run bit for bit",
            m.scenario, row.things, row.shards,
        );
    }
    Ok(())
}

fn print_row(things: usize, shards: usize, m: &ScenarioMetrics) {
    let cache = if m.cache_uploads + m.origin_uploads > 0 {
        format!(
            " | cache {} (h{} m{} c{}) origin {}",
            m.cache_uploads, m.cache_hits, m.cache_misses, m.cache_coalesced, m.origin_uploads,
        )
    } else {
        String::new()
    };
    println!(
        "{:>9} | {:>6} things x{:<2} | {:>6} events ({:>6} ok) | wall {:>9.1} ms | virtual {:>10.1} ms | \
         p50 {:>8.2} ms  p99 {:>8.2} ms | {:>8} frames | {:>7.4} J/thing | \
         {:>8} allocs {:>8} shares{cache}",
        m.scenario,
        things,
        shards,
        m.events,
        m.completed,
        m.wall_ms,
        m.virtual_ms,
        m.latency.p50_ms,
        m.latency.p99_ms,
        m.frames_tx,
        m.joules_per_thing,
        m.payload_allocs,
        m.payload_clones,
    );
}

fn find<'a>(
    report: &'a BenchReport,
    scenario: &str,
    things: usize,
    shards: usize,
) -> Option<&'a ScenarioRow> {
    report
        .scenarios
        .iter()
        .find(|r| r.metrics.scenario == scenario && r.things == things && r.shards == shards)
}

/// Absolute gates on the flash-crowd rows of the *current* report: the
/// cache tier must serve at least [`FLASH_CACHE_SERVED_FLOOR`] of all
/// driver uploads, and coalescing must hold the origin to at most one
/// fetch session per (cache, distinct device type) pair. Deterministic
/// counters, so no baseline or tolerance is involved.
fn gate_cache_tier(current: &BenchReport) -> Result<(), String> {
    let device_pool = FleetConfig::new(1).device_pool.len() as u64;
    for row in &current.scenarios {
        if row.metrics.scenario != "flash" || row.caches == 0 {
            continue;
        }
        let m = &row.metrics;
        let total = m.cache_uploads + m.origin_uploads;
        let served = if total == 0 {
            0.0
        } else {
            m.cache_uploads as f64 / total as f64
        };
        if row.things >= FLASH_FLOOR_MIN_THINGS && served < FLASH_CACHE_SERVED_FLOOR {
            return Err(format!(
                "flash@{} shards={}: caches served {:.1}% of driver uploads \
                 ({} of {}), below the {:.0}% floor",
                row.things,
                row.shards,
                served * 100.0,
                m.cache_uploads,
                total,
                FLASH_CACHE_SERVED_FLOOR * 100.0,
            ));
        }
        let coalesce_bound = row.caches as u64 * device_pool;
        if m.origin_uploads > coalesce_bound {
            return Err(format!(
                "flash@{} shards={}: origin served {} fetch sessions, \
                 above the coalescing bound of {} (caches × device types) — \
                 singleflight is broken",
                row.things, row.shards, m.origin_uploads, coalesce_bound,
            ));
        }
        let floor = if row.things >= FLASH_FLOOR_MIN_THINGS {
            format!(
                "cache-served {:.2}% >= {:.0}%",
                served * 100.0,
                FLASH_CACHE_SERVED_FLOOR * 100.0
            )
        } else {
            format!(
                "cache-served {:.2}% (floor waived below {FLASH_FLOOR_MIN_THINGS} things)",
                served * 100.0
            )
        };
        println!(
            "gate ok: flash@{} shards={} {floor}, origin fetches {} <= {}",
            row.things, row.shards, m.origin_uploads, coalesce_bound,
        );
    }
    Ok(())
}

/// Absolute gates on the soak rows of the *current* report: every
/// whole-soak invariant must have held (exactly-once discovery, cache
/// coherence, bounded Manager retention), the per-epoch follower-drain
/// breakdown must tile the aggregate, deep-profile fault families must
/// show evidence they actually bit (blackouts strand Things, MCU
/// crashes tear images), gray rows must carry degraded-link deliveries
/// in *every* epoch (a zero epoch means the schedule silently stopped
/// firing), and the process peak RSS must stay flat across the day —
/// within [`SOAK_RSS_FLAT_FACTOR`] (plus slack) of the high-water mark
/// after the first epoch. When a baseline is supplied, each fault
/// family's p99 recovery latency (virtual time, deterministic) is
/// additionally gated within [`SOAK_RECOVERY_P99_FACTOR`] of the
/// baseline's.
fn gate_soak(current: &BenchReport, baseline: Option<&BenchReport>) -> Result<(), String> {
    for row in &current.scenarios {
        let Some(soak) = &row.soak else { continue };
        if !soak.invariants_held() {
            return Err(format!(
                "soak@{} shards={}: invariants violated \
                 (discovery {}, coherence {}, retention {}, \
                 trace-attribution mismatches {}) — a failure path regressed",
                row.things,
                row.shards,
                soak.discovery_violations,
                soak.coherence_violations,
                soak.retention_violations,
                soak.attribution_mismatches,
            ));
        }
        // Recovery-latency attribution: every stop-clock read must have
        // named the trace that actually served the recovery (satellite
        // of the tracing tentpole — also folded into invariants_held,
        // asserted separately so the failure is legible).
        if soak.attribution_mismatches > 0 {
            return Err(format!(
                "soak@{} shards={}: {} recovery-latency samples were \
                 attributed to the wrong trace",
                row.things, row.shards, soak.attribution_mismatches,
            ));
        }
        // Per-epoch follower drains must tile the aggregate exactly —
        // one entry per epoch — so the artifact can prove followers
        // were actually parked when each epoch's mid-transfer crash
        // landed, not merely that some epoch drained somebody.
        if soak.followers_drained_by_epoch.len() != soak.epochs {
            return Err(format!(
                "soak@{} shards={}: {} per-epoch drain entries for {} epochs — \
                 the per-epoch breakdown is incomplete",
                row.things,
                row.shards,
                soak.followers_drained_by_epoch.len(),
                soak.epochs,
            ));
        }
        let drained_sum: u64 = soak.followers_drained_by_epoch.iter().sum();
        if drained_sum != soak.followers_drained {
            return Err(format!(
                "soak@{} shards={}: per-epoch drains sum to {} but the aggregate \
                 says {} — the breakdown lost a crash window",
                row.things, row.shards, drained_sum, soak.followers_drained,
            ));
        }
        // Deep-profile evidence gates: when the deeper fault families
        // ran, they must have actually bitten. A blackout that strands
        // nobody or an MCU-crash schedule that never tears an image
        // means the injection silently stopped landing mid-transfer.
        if soak.standby_outages > 0 && soak.unserved_windows == 0 {
            return Err(format!(
                "soak@{} shards={}: {} standby blackouts stranded zero Things — \
                 the unserved-detection window is not observing the outage",
                row.things, row.shards, soak.standby_outages,
            ));
        }
        if soak.thing_crashes > 0
            && (soak.half_images_rejected == 0 || soak.half_image_refetches == 0)
        {
            return Err(format!(
                "soak@{} shards={}: {} MCU crashes produced {} torn-image \
                 rejections and {} refetches — mid-install crashes are no \
                 longer landing while chunks are in flight",
                row.things,
                row.shards,
                soak.thing_crashes,
                soak.half_images_rejected,
                soak.half_image_refetches,
            ));
        }
        // Gray evidence gate: the degrade schedule is probabilistic per
        // (edge, window) but an hour-long epoch crosses hundreds of
        // windows — an epoch with zero degraded deliveries means the
        // schedule is no longer reaching the hop path at all.
        if row.metrics.scenario == "soak-gray" {
            if let Some(zero) = soak.degraded_by_epoch.iter().position(|&d| d == 0) {
                return Err(format!(
                    "soak-gray@{} shards={}: epoch {} carried zero degraded-link \
                     deliveries — the gray schedule is not firing",
                    row.things, row.shards, zero,
                ));
            }
            if soak.degraded_by_epoch.len() != soak.epochs {
                return Err(format!(
                    "soak-gray@{} shards={}: {} per-epoch degraded entries for {} \
                     epochs — the per-epoch breakdown is incomplete",
                    row.things,
                    row.shards,
                    soak.degraded_by_epoch.len(),
                    soak.epochs,
                ));
            }
        }
        // Recovery-latency SLO: per-family p99 against the baseline's,
        // when both sides carry the family. A family the baseline never
        // saw recover is reported, not gated — there is no SLO to hold
        // it to until the baseline is refreshed.
        if let Some(base) = baseline
            .and_then(|b| find(b, &row.metrics.scenario, row.things, row.shards))
            .and_then(|r| r.soak.as_ref())
        {
            for ((name, cur), (_, prev)) in soak
                .recovery
                .families()
                .iter()
                .zip(base.recovery.families().iter())
            {
                if prev.count == 0 {
                    if cur.count > 0 {
                        eprintln!(
                            "warning: {}@{} shards={} family {name} recovered {} Things \
                             (p99 {:.0} ms) but the baseline has no samples — refresh \
                             bench/baseline.json to put it under the p99 gate",
                            row.metrics.scenario,
                            row.things,
                            row.shards,
                            cur.count,
                            cur.p99_ms(),
                        );
                    }
                    continue;
                }
                let limit = prev.p99_ms() * SOAK_RECOVERY_P99_FACTOR;
                if cur.p99_ms() > limit {
                    return Err(format!(
                        "{}@{} shards={}: {name} p99 recovery latency regressed: \
                         {:.0} ms > {:.0} ms (baseline {:.0} ms × {SOAK_RECOVERY_P99_FACTOR}) — \
                         recovery after a {name} fault got slower",
                        row.metrics.scenario,
                        row.things,
                        row.shards,
                        cur.p99_ms(),
                        limit,
                        prev.p99_ms(),
                    ));
                }
                println!(
                    "gate ok: {}@{} shards={} {name} p99 {:.0} ms <= {:.0} ms \
                     (baseline {:.0} ms × {SOAK_RECOVERY_P99_FACTOR})",
                    row.metrics.scenario,
                    row.things,
                    row.shards,
                    cur.p99_ms(),
                    limit,
                    prev.p99_ms(),
                );
            }
        }
        let limit =
            (soak.rss_epoch1_kb as f64 * SOAK_RSS_FLAT_FACTOR) as u64 + SOAK_RSS_FLAT_SLACK_KB;
        if soak.rss_epoch1_kb > 0 && soak.peak_rss_kb > limit {
            return Err(format!(
                "soak@{} shards={}: peak RSS {} kB grew past {} kB \
                 (epoch-1 mark {} kB × {SOAK_RSS_FLAT_FACTOR} + {SOAK_RSS_FLAT_SLACK_KB}) — \
                 a day of fault churn is accreting state",
                row.things, row.shards, soak.peak_rss_kb, limit, soak.rss_epoch1_kb,
            ));
        }
        println!(
            "gate ok: {}@{} shards={} held all invariants over {} faults \
             ({} blackouts / {} unserved windows, {} torn images rejected); \
             peak RSS {} kB within the flatness bound ({} kB)",
            row.metrics.scenario,
            row.things,
            row.shards,
            soak.faults_injected,
            soak.standby_outages,
            soak.unserved_windows,
            soak.half_images_rejected,
            soak.peak_rss_kb,
            limit,
        );
    }
    Ok(())
}

/// The tracing-overhead gate: one discovery wave at
/// [`TRACE_OVERHEAD_THINGS`] with the tracer off, one with it on.
/// Against the baseline's discovery row at the same size the untraced
/// wall must stay within [`TRACE_OVERHEAD_DISABLED_FACTOR`] (context
/// carriage is always-on and must cost ~nothing) and the traced wall
/// within [`TRACE_OVERHEAD_ENABLED_FACTOR`]. Without a baseline row
/// the traced run is gated against the untraced one from this same
/// process, using the enabled factor.
fn gate_trace_overhead(seed: u64, baseline: Option<&BenchReport>) -> Result<(), String> {
    let run_once = |traced_on: bool| -> (f64, u64) {
        let config = FleetConfig::new(TRACE_OVERHEAD_THINGS).with_seed(seed);
        let mut fleet = traced(Fleet::build(config), traced_on);
        let m = fleet.discovery_wave();
        (m.wall_ms, fleet.world.take_spans().len() as u64)
    };
    // Best of three: scheduler noise is one-sided (contention only ever
    // slows a run), so the minimum is the faithful cost estimate — and
    // comparing a best-of-3 against the baseline's single-shot wall
    // biases the absolute gates *against* false alarms.
    let measure = |traced_on: bool| -> (f64, u64) {
        (0..3)
            .map(|_| run_once(traced_on))
            .reduce(|a, b| if b.0 < a.0 { b } else { a })
            .expect("three runs")
    };
    let (disabled_ms, _) = measure(false);
    let (enabled_ms, spans) = measure(true);
    println!(
        "trace overhead: discovery@{TRACE_OVERHEAD_THINGS} wall {disabled_ms:.1} ms untraced, \
         {enabled_ms:.1} ms traced ({spans} spans)",
    );
    let base = baseline
        .and_then(|b| find(b, GATE_SCENARIO, TRACE_OVERHEAD_THINGS, 1))
        .map(|r| r.metrics.wall_ms);
    match base {
        Some(base_ms) => {
            let off_limit = base_ms * TRACE_OVERHEAD_DISABLED_FACTOR;
            if disabled_ms > off_limit {
                return Err(format!(
                    "tracing-overhead gate: untraced discovery@{TRACE_OVERHEAD_THINGS} wall \
                     {disabled_ms:.1} ms > {off_limit:.1} ms (baseline {base_ms:.1} ms × \
                     {TRACE_OVERHEAD_DISABLED_FACTOR}) — the disabled tracer is not free",
                ));
            }
            let on_limit = base_ms * TRACE_OVERHEAD_ENABLED_FACTOR;
            if enabled_ms > on_limit {
                return Err(format!(
                    "tracing-overhead gate: traced discovery@{TRACE_OVERHEAD_THINGS} wall \
                     {enabled_ms:.1} ms > {on_limit:.1} ms (baseline {base_ms:.1} ms × \
                     {TRACE_OVERHEAD_ENABLED_FACTOR}) — span recording got expensive",
                ));
            }
            println!(
                "gate ok: tracing overhead — untraced {disabled_ms:.1} <= {off_limit:.1} ms, \
                 traced {enabled_ms:.1} <= {on_limit:.1} ms (baseline {base_ms:.1} ms)",
            );
        }
        None => {
            let limit = disabled_ms * TRACE_OVERHEAD_ENABLED_FACTOR;
            if enabled_ms > limit {
                return Err(format!(
                    "tracing-overhead gate: traced discovery@{TRACE_OVERHEAD_THINGS} wall \
                     {enabled_ms:.1} ms > {limit:.1} ms (untraced {disabled_ms:.1} ms × \
                     {TRACE_OVERHEAD_ENABLED_FACTOR}) — span recording got expensive",
                ));
            }
            println!(
                "gate ok: tracing overhead — traced {enabled_ms:.1} <= {limit:.1} ms \
                 (untraced {disabled_ms:.1} ms; no baseline row to anchor the absolute gates)",
            );
        }
    }
    Ok(())
}

/// Applies the regression gates; returns an error message on failure.
fn gate(current: &BenchReport, baseline: &BenchReport) -> Result<(), String> {
    // Driver-image gates: compiler output is deterministic, so any
    // growth in shipped bytes or chunk count over the baseline is a real
    // optimiser regression — no tolerance factor.
    for d in &current.drivers {
        let Some(base) = baseline.drivers.iter().find(|b| b.name == d.name) else {
            eprintln!(
                "warning: driver `{}` has no baseline size row — \
                 refresh bench/baseline.json to gate it",
                d.name,
            );
            continue;
        };
        if d.image_bytes > base.image_bytes || d.chunks > base.chunks {
            return Err(format!(
                "driver `{}` image grew: {} bytes / {} chunks, baseline {} bytes / {} chunks — \
                 an optimiser pass regressed",
                d.name, d.image_bytes, d.chunks, base.image_bytes, base.chunks,
            ));
        }
        println!(
            "gate ok: driver {} ships {} bytes ({} chunks) <= baseline {} bytes ({} chunks)",
            d.name, d.image_bytes, d.chunks, base.image_bytes, base.chunks,
        );
    }

    // Deterministic metrics should match the baseline bit-for-bit; drift
    // means behaviour changed and the baseline wants a refresh. Warn —
    // the hard gates are wall-clock and the allocation counters.
    for row in &current.scenarios {
        if let Some(b) = find(baseline, &row.metrics.scenario, row.things, row.shards) {
            // The soak summary covers every deterministic fault and
            // unserved counter (including the deep-chaos families), so
            // schedule drift in any of them is surfaced here.
            let soak_summary = |r: &ScenarioRow| r.soak.as_ref().map(|s| s.deterministic_summary());
            if soak_summary(row) != soak_summary(b) {
                eprintln!(
                    "warning: {}@{} shards={} soak counters drifted from baseline; \
                     refresh bench/baseline.json if intentional\n  base: {:?}\n  now:  {:?}",
                    row.metrics.scenario,
                    row.things,
                    row.shards,
                    soak_summary(b),
                    soak_summary(row),
                );
            }
            if row.metrics.frames_tx != b.metrics.frames_tx
                || row.metrics.virtual_ms != b.metrics.virtual_ms
                || row.metrics.payload_allocs != b.metrics.payload_allocs
                || row.metrics.payload_clones != b.metrics.payload_clones
                || row.faults_injected != b.faults_injected
                || row.soak_ticks != b.soak_ticks
            {
                eprintln!(
                    "warning: {}@{} drifted from baseline \
                     (frames {} -> {}, virtual {:.1} -> {:.1} ms, \
                     payload allocs {} -> {}, clones {} -> {}, \
                     faults {} -> {}, soak ticks {} -> {}); \
                     refresh bench/baseline.json if intentional",
                    row.metrics.scenario,
                    row.things,
                    b.metrics.frames_tx,
                    row.metrics.frames_tx,
                    b.metrics.virtual_ms,
                    row.metrics.virtual_ms,
                    b.metrics.payload_allocs,
                    row.metrics.payload_allocs,
                    b.metrics.payload_clones,
                    row.metrics.payload_clones,
                    b.faults_injected,
                    row.faults_injected,
                    b.soak_ticks,
                    row.soak_ticks,
                );
            }
        }
    }

    // Wall-clock gates: 1k and 5k sequential discovery, plus the sharded
    // rows in GATE_WALL_SHARDED when both sides carry them. A run that
    // produced no discovery rows at all (e.g. the nightly soak-only
    // profile) skips them: there is nothing to time, and the drift
    // comparison above already covered whatever rows it did produce.
    if !current
        .scenarios
        .iter()
        .any(|r| r.metrics.scenario == GATE_SCENARIO)
    {
        println!("gate skipped: no {GATE_SCENARIO} rows in this run (scenario subset)");
        return Ok(());
    }
    let wall_rows: Vec<(usize, usize, bool)> = GATE_WALL_THINGS
        .iter()
        .map(|&t| (t, 1, true))
        .chain(GATE_WALL_SHARDED.iter().map(|&(t, k)| (t, k, false)))
        .collect();
    for (things, shards, required) in wall_rows {
        let cur = find(current, GATE_SCENARIO, things, shards);
        let base = find(baseline, GATE_SCENARIO, things, shards);
        let (cur, base) = match (cur, base, required) {
            (Some(c), Some(b), _) => (c, b),
            (_, _, false) => continue,
            _ => {
                return Err(format!(
                    "missing {GATE_SCENARIO}@{things} shards={shards} row to gate on"
                ))
            }
        };
        let limit = base.metrics.wall_ms * GATE_FACTOR;
        if cur.metrics.wall_ms > limit {
            return Err(format!(
                "{GATE_SCENARIO}@{things} shards={shards} wall-clock regressed: \
                 {:.1} ms > {:.1} ms (baseline {:.1} ms × {GATE_FACTOR})",
                cur.metrics.wall_ms, limit, base.metrics.wall_ms,
            ));
        }
        println!(
            "gate ok: {GATE_SCENARIO}@{things} shards={shards} wall {:.1} ms <= {:.1} ms \
             (baseline {:.1} ms × {GATE_FACTOR})",
            cur.metrics.wall_ms, limit, base.metrics.wall_ms,
        );
    }

    // Allocation-counter gates: every discovery row the baseline also
    // has. These are deterministic, so a failure means a copy or an
    // allocation genuinely entered the data plane.
    for row in &current.scenarios {
        if row.metrics.scenario != GATE_SCENARIO {
            continue;
        }
        let Some(base) = find(baseline, GATE_SCENARIO, row.things, row.shards) else {
            continue;
        };
        let limit = (base.metrics.payload_allocs as f64 * GATE_FACTOR).ceil() as u64;
        if row.metrics.payload_allocs > limit {
            return Err(format!(
                "{GATE_SCENARIO}@{} shards={} payload allocations regressed: {} > {} \
                 (baseline {} × {GATE_FACTOR})",
                row.things,
                row.shards,
                row.metrics.payload_allocs,
                limit,
                base.metrics.payload_allocs,
            ));
        }
        println!(
            "gate ok: {GATE_SCENARIO}@{} shards={} payload allocs {} <= {} \
             (baseline {} × {GATE_FACTOR})",
            row.things, row.shards, row.metrics.payload_allocs, limit, base.metrics.payload_allocs,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: fleet [--nodes N,N,..] [--shards K,K,..] [--seed N] \
                 [--scenario discovery|churn|steady|flash|soak|all] \
                 [--chaos day|deep|gray] [--out FILE] [--gate BASELINE] \
                 [--trace-out FILE] [--trace-overhead]"
            );
            return ExitCode::from(2);
        }
    };

    // Read the baseline (when gating) up front: the per-family p99
    // recovery SLOs and the tracing-overhead gate compare against it.
    let baseline = match &opts.gate {
        None => None,
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<BenchReport>(&s).map_err(|e| e.to_string()))
            .and_then(|b| {
                if b.schema == SCHEMA {
                    Ok(b)
                } else {
                    Err(format!(
                        "baseline schema {} != expected {SCHEMA} — regenerate it with \
                         `fleet --shards 1,4 --out {path}`",
                        b.schema,
                    ))
                }
            }) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("error: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    // `--trace-overhead` is a standalone mode: measure and gate the
    // tracer's cost, skip the sweep (CI runs it as its own step).
    if opts.trace_overhead {
        return match gate_trace_overhead(opts.seed, baseline.as_ref()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut trace = TraceCollector::new(opts.trace_out.is_some());
    let report = run(&opts, &mut trace);

    // Write the report *before* the identity check: a divergence is
    // exactly when the per-row artifact is needed to debug, and CI's
    // upload step runs `if: always()`.
    if let Some(path) = &opts.out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    // The Perfetto artifact is likewise written before any gate runs.
    if let Some(path) = &opts.trace_out {
        let json = chrome_trace_json(&trace.spans, "upnp fleet");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} spans)", trace.spans.len());
    }

    // On a traced run, a tripped identity check or soak gate dumps the
    // flight-recorder window next to the failure for CI to upload.
    let flight_dump = |reason: &str| {
        if !trace.enabled {
            return;
        }
        let dump = trace.recorder.dump_json(reason);
        match std::fs::write(FLIGHT_DUMP_PATH, dump + "\n") {
            Ok(()) => eprintln!(
                "wrote {FLIGHT_DUMP_PATH} ({} spans held, {} evicted)",
                trace.recorder.len(),
                trace.recorder.evicted(),
            ),
            Err(e) => eprintln!("error: writing {FLIGHT_DUMP_PATH}: {e}"),
        }
    };

    if let Err(e) = check_shard_identity(&report) {
        flight_dump(&e);
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    // The cache-tier floors are absolute (deterministic counters), so
    // they apply whenever flash rows were produced — no baseline needed.
    if let Err(e) = gate_cache_tier(&report) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    // Soak gates: invariant verdicts, gray evidence and RSS flatness
    // are absolute (they travel inside the rows); the recovery p99
    // SLOs engage when a baseline is present.
    if let Err(e) = gate_soak(&report, baseline.as_ref()) {
        flight_dump(&e);
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(baseline) = &baseline {
        if let Err(e) = gate(&report, baseline) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
