//! Ablations of the design decisions DESIGN.md calls out.
//!
//! Each function quantifies what the paper's design buys relative to the
//! obvious alternative:
//!
//! 1. geometric vs linear pulse coding (§3's "component values grow
//!    exponentially" argument);
//! 2. precision vs commodity resistors (decode reliability);
//! 3. adaptive vs fixed channel slots (identification latency);
//! 4. multicast vs unicast-flood discovery (radio traffic);
//! 5. interrupt-gated board power vs always-on (§3.2's power gating).

use std::fmt::Write as _;

use upnp_hw::board::{ChannelResult, ControlBoard, ScanPolicy};
use upnp_hw::calib;
use upnp_hw::channels::ChannelId;
use upnp_hw::components::ToleranceClass;
use upnp_hw::encoding::{LinearCodec, PulseCodec};
use upnp_hw::id::{prototypes, DeviceTypeId};
use upnp_hw::peripheral::{Interconnect, PeripheralBoard};
use upnp_net::addr;
use upnp_net::link::LinkQuality;
use upnp_net::{Datagram, Network};
use upnp_sim::{SimDuration, SimRng, SimTime};

/// Ablation 1: decode guard band of geometric vs linear coding.
pub fn codec_guard_bands() -> (f64, f64) {
    let geo = PulseCodec::paper();
    let lin = LinearCodec::paper_span();
    (geo.guard_band(), lin.guard_band_at_max())
}

/// Ablation 2: misidentification rate versus resistor tolerance class.
pub fn decode_error_rate(tolerance: ToleranceClass, trials: usize, seed: u64) -> f64 {
    let mut rng = SimRng::seed(seed);
    let mut wrong = 0usize;
    for _ in 0..trials {
        let mut board = ControlBoard::sample(&mut rng);
        let id = DeviceTypeId::new(rng.next_u32());
        if id.is_reserved() {
            continue;
        }
        let Ok(p) = PeripheralBoard::manufacture(id, Interconnect::Adc, tolerance, &mut rng) else {
            continue;
        };
        board.plug(ChannelId(0), p).expect("fresh board");
        let outcome = board.scan(SimTime::ZERO, 25.0);
        if outcome.channels[0].result != ChannelResult::Identified(id) {
            wrong += 1;
        }
    }
    wrong as f64 / trials as f64
}

/// Ablation 3: scan latency under adaptive vs fixed slots.
pub fn slot_policy_latency_ms() -> (f64, f64) {
    let run = |policy: ScanPolicy| {
        let mut board = ControlBoard::ideal();
        board.set_policy(policy);
        let p = PeripheralBoard::manufacture_ideal(prototypes::TMP36, Interconnect::Adc).unwrap();
        board.plug(ChannelId(0), p).unwrap();
        board.scan(SimTime::ZERO, 25.0).duration().as_millis_f64()
    };
    // A fixed slot must cover the worst-case 4-pulse train.
    let worst_slot = calib::t_max() * 4 + calib::T_SETTLE;
    (
        run(ScanPolicy::Adaptive),
        run(ScanPolicy::FixedSlot(worst_slot)),
    )
}

/// Ablation 4: radio frames for discovery via per-type multicast versus
/// flooding every Thing with unicast queries.
pub fn discovery_traffic(things: usize, matching: usize) -> (u32, u32) {
    assert!(matching <= things);
    let build = || {
        let mut net = Network::new(0x2001_0db8_0000, 44);
        let root = net.add_node();
        let nodes: Vec<_> = (0..things).map(|_| net.add_node()).collect();
        for &n in &nodes {
            net.link(root, n, LinkQuality::PERFECT);
        }
        net.build_tree(root);
        (net, root, nodes)
    };
    let group = addr::peripheral_group(0x2001_0db8_0000, 0xad1c_be01);

    // Multicast: one send to the peripheral group reaches the members.
    let (mut net, root, nodes) = build();
    for &n in nodes.iter().take(matching) {
        net.join_group(n, group);
    }
    let dgram = Datagram {
        src: net.addr_of(root),
        dst: group,
        src_port: addr::MCAST_PORT,
        dst_port: addr::MCAST_PORT,
        payload: vec![0; 8].into(),
    };
    let report = net.send(SimTime::ZERO, root, dgram);
    net.poll(SimTime::MAX);
    let multicast_frames = report.frames;

    // Unicast flood: one query per Thing, matching or not.
    let (mut net, root, nodes) = build();
    let mut unicast_frames = 0;
    for (i, &n) in nodes.iter().enumerate() {
        let dgram = Datagram {
            src: net.addr_of(root),
            dst: net.addr_of(n),
            src_port: addr::MCAST_PORT,
            dst_port: addr::MCAST_PORT,
            payload: vec![0; 8].into(),
        };
        let t = SimTime::ZERO + SimDuration::from_millis(i as u64 * 10);
        unicast_frames += net.send(t, root, dgram).frames;
    }
    net.poll(SimTime::MAX);
    (multicast_frames, unicast_frames)
}

/// Ablation 5: one-year board energy, interrupt-gated vs always-on, at a
/// given change rate.
pub fn power_gating_year_j(rate_minutes: u64) -> (f64, f64) {
    let year_s = 365.0 * 24.0 * 3600.0;
    let changes = year_s / (rate_minutes as f64 * 60.0);
    // Gated: energy only during scans (mean prototype scan).
    let stats = upnp_energy::ident::ident_energy_stats(&prototypes::ALL);
    let gated = stats.mean_energy_j * changes;
    // Always-on: the board's scan-base draw runs all year.
    let always_on = calib::P_SCAN_BASE_W * year_s + gated;
    (gated, always_on)
}

/// Renders all ablations.
pub fn run_all() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablations (design-decision quantification):");

    let (geo, lin) = codec_guard_bands();
    let _ = writeln!(
        out,
        "  1. pulse coding: geometric guard band {:.3}% vs linear-at-max {:.3}% ({:.1}x)",
        geo * 100.0,
        lin * 100.0,
        geo / lin
    );

    for (label, tol) in [
        ("0.1% resistors", ToleranceClass::PointOnePercent),
        ("1% resistors  ", ToleranceClass::OnePercent),
        ("5% resistors  ", ToleranceClass::FivePercent),
    ] {
        let rate = decode_error_rate(tol, 200, 7);
        let _ = writeln!(
            out,
            "  2. misidentification with {label}: {:5.1}%",
            rate * 100.0
        );
    }

    let (adaptive, fixed) = slot_policy_latency_ms();
    let _ = writeln!(
        out,
        "  3. scan latency: adaptive slots {adaptive:.1} ms vs fixed slots {fixed:.1} ms"
    );

    let (mcast, ucast) = discovery_traffic(20, 3);
    let _ = writeln!(
        out,
        "  4. discovery traffic (20 things, 3 matching): multicast {mcast} frames vs unicast flood {ucast} frames"
    );

    let (gated, always) = power_gating_year_j(60);
    let _ = writeln!(
        out,
        "  5. board energy/year at hourly changes: gated {gated:.1} J vs always-on {always:.0} J ({:.0}x)",
        always / gated
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_beats_linear_by_at_least_2x() {
        let (geo, lin) = codec_guard_bands();
        assert!(geo / lin > 2.0, "geo {geo} lin {lin}");
    }

    #[test]
    fn decode_errors_grow_with_tolerance() {
        let precise = decode_error_rate(ToleranceClass::PointOnePercent, 100, 1);
        let commodity = decode_error_rate(ToleranceClass::FivePercent, 100, 1);
        assert!(precise < 0.05, "precision parts must decode ({precise})");
        assert!(commodity > 0.5, "commodity parts must fail ({commodity})");
    }

    #[test]
    fn adaptive_slots_are_faster() {
        let (adaptive, fixed) = slot_policy_latency_ms();
        assert!(
            fixed > adaptive * 2.0,
            "fixed {fixed} ms vs adaptive {adaptive} ms"
        );
    }

    #[test]
    fn multicast_discovery_saves_traffic() {
        let (mcast, ucast) = discovery_traffic(20, 3);
        assert!(
            ucast as f64 / mcast as f64 > 3.0,
            "multicast {mcast} vs unicast {ucast}"
        );
    }

    #[test]
    fn power_gating_saves_orders_of_magnitude() {
        let (gated, always) = power_gating_year_j(60);
        assert!(always / gated > 100.0, "gated {gated} vs always {always}");
    }
}
