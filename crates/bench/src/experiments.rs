//! Regeneration of every table and figure in §6 of the paper.

use std::fmt::Write as _;

use upnp_core::world::{ThingId, World, WorldConfig};
use upnp_dsl::compile_source;
use upnp_dsl::sloc::{count_c, count_dsl};
use upnp_energy::deployment::{figure_12, Technology, YearConfig};
use upnp_energy::ident::{ident_energy_stats, random_ids};
use upnp_hw::board::ControlBoard;
use upnp_hw::channels::ChannelId;
use upnp_hw::id::{prototypes, DeviceTypeId};
use upnp_hw::peripheral::{Interconnect, PeripheralBoard};
use upnp_sim::{AvrCostModel, SimRng, SimTime};
use upnp_vm::cost::VmCostModel;
use upnp_vm::footprint::FootprintReport;
use upnp_vm::runtime::Runtime;

/// Figure 2/3: the four-interval identification waveform of one
/// peripheral.
pub fn exp_fig3_waveform(device: DeviceTypeId) -> String {
    let mut board = ControlBoard::ideal();
    let p =
        PeripheralBoard::manufacture_ideal(device, Interconnect::Adc).expect("prototype ids solve");
    board.plug(ChannelId(0), p).expect("channel empty");
    board.scan(SimTime::ZERO, 25.0);
    let pulses = board.trace().pulses("output");
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3 — ID waveform for {device} (T1..T4):");
    for (i, (start, end)) in pulses.iter().enumerate() {
        let _ = writeln!(
            out,
            "  T{} = {:8.3} ms  (byte {:#04x})",
            i + 1,
            end.since(*start).as_millis_f64(),
            device.bytes()[i],
        );
    }
    let total: f64 = pulses
        .iter()
        .map(|(s, e)| e.since(*s).as_millis_f64())
        .sum();
    let _ = writeln!(out, "  sum of intervals = {total:.3} ms");
    out
}

/// Figure 5: channel-enable waveform with peripherals on channels A and C.
pub fn exp_fig5_waveform() -> String {
    let mut board = ControlBoard::ideal();
    let a = PeripheralBoard::manufacture_ideal(prototypes::TMP36, Interconnect::Adc).unwrap();
    let c = PeripheralBoard::manufacture_ideal(prototypes::ID20LA, Interconnect::Uart).unwrap();
    board.plug(ChannelId(0), a).unwrap();
    board.plug(ChannelId(2), c).unwrap();
    board.scan(SimTime::ZERO, 25.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — channel time slots (A and C occupied, B empty):"
    );
    for ch in 0..3u8 {
        let signal = ChannelId(ch).enable_signal();
        for (start, end) in board.trace().pulses(signal) {
            let _ = writeln!(
                out,
                "  {signal}: {:8.3} -> {:8.3} ms  (slot {:.3} ms)",
                start.as_nanos() as f64 / 1e6,
                end.as_nanos() as f64 / 1e6,
                end.since(start).as_millis_f64(),
            );
        }
    }
    let _ = writeln!(
        out,
        "  output pulses observed: {} (4 per occupied channel)",
        board.trace().pulses("output").len()
    );
    out
}

/// §6.1: identification time and energy for the prototype peripherals and
/// for random identifiers.
pub fn exp_sec61_identification() -> String {
    let protos = ident_energy_stats(&prototypes::ALL);
    let mut rng = SimRng::seed(61);
    let ids = random_ids(500, &mut rng);
    let random = ident_energy_stats(&ids);
    let mut out = String::new();
    let _ = writeln!(out, "§6.1 — identification time and energy:");
    let _ = writeln!(
        out,
        "  prototypes (4 ids):  time {:6.1}-{:6.1} ms   energy {:5.2}-{:5.2} mJ",
        protos.min_time_s * 1e3,
        protos.max_time_s * 1e3,
        protos.min_energy_j * 1e3,
        protos.max_energy_j * 1e3,
    );
    let _ = writeln!(
        out,
        "  random (500 ids):    time {:6.1}-{:6.1} ms   energy {:5.2}-{:5.2} mJ (σ {:.2} mJ)",
        random.min_time_s * 1e3,
        random.max_time_s * 1e3,
        random.min_energy_j * 1e3,
        random.max_energy_j * 1e3,
        random.std_energy_j * 1e3,
    );
    let _ = writeln!(
        out,
        "  paper:               time  220.0- 300.0 ms   energy  2.48- 6.76 mJ"
    );
    out
}

/// Figure 12: one-year energy versus peripheral change rate.
pub fn exp_fig12(samples: usize) -> String {
    let config = YearConfig {
        ident_samples: samples,
        ..YearConfig::default()
    };
    let points = figure_12(&config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 12 — one-year energy (J) vs change rate (minutes), log-log:"
    );
    let _ = writeln!(
        out,
        "  {:>9}  {:>14} {:>14} {:>14} {:>14}",
        "rate(min)", "USB host", "uPnP+ADC", "uPnP+I2C", "uPnP+UART"
    );
    for &rate in &upnp_energy::deployment::FIGURE_12_RATES {
        let row: Vec<f64> = [
            Technology::UsbHost,
            Technology::Upnp(Interconnect::Adc),
            Technology::Upnp(Interconnect::I2c),
            Technology::Upnp(Interconnect::Uart),
        ]
        .iter()
        .map(|t| {
            points
                .iter()
                .find(|p| p.rate_minutes == rate && p.technology == *t)
                .expect("sweep covers all points")
                .energy_j
        })
        .collect();
        let _ = writeln!(
            out,
            "  {:>9}  {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e}",
            rate, row[0], row[1], row[2], row[3]
        );
    }
    let usb_hourly = points
        .iter()
        .find(|p| p.rate_minutes == 100 && p.technology == Technology::UsbHost)
        .unwrap()
        .energy_j;
    let upnp_hourly = points
        .iter()
        .find(|p| p.rate_minutes == 100 && p.technology == Technology::Upnp(Interconnect::Adc))
        .unwrap()
        .energy_j;
    let _ = writeln!(
        out,
        "  USB/uPnP+ADC ratio at ~hourly changes: {:.0}x (paper: >10^4)",
        usb_hourly / upnp_hourly
    );
    out
}

/// Table 2: memory footprint of the software stack.
pub fn exp_table2() -> String {
    let mut rt = Runtime::new(2);
    let image = compile_source(upnp_dsl::drivers::TMP36, prototypes::TMP36.raw()).unwrap();
    rt.install_driver(image, 0).unwrap();
    rt.run_until_idle();
    let report = FootprintReport::measure(&rt);
    let mut out = String::new();
    let _ = writeln!(out, "Table 2 — µPnP memory footprint:");
    out.push_str(&report.render());
    let _ = writeln!(
        out,
        "  paper total: 14231 B flash (10.8%), 1518 B RAM (9.2%)"
    );
    out
}

/// §6.2: VM and event-router performance, projected on the 16 MHz AVR.
pub fn exp_sec62_vm() -> String {
    let avr = AvrCostModel::atmega128rfa1();
    let model = VmCostModel;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§6.2 — VM and event-router performance (AVR-projected):"
    );
    let mean = avr.duration(model.isa_mean()).as_micros_f64();
    let push = avr
        .duration(upnp_sim::CpuCost::cycles(upnp_vm::cost::PUSH_CYCLES))
        .as_micros_f64();
    let pop = avr
        .duration(upnp_sim::CpuCost::cycles(upnp_vm::cost::POP_CYCLES))
        .as_micros_f64();
    let route = avr.duration(model.route_event()).as_micros_f64();
    let _ = writeln!(out, "  instruction mean: {mean:6.2} us   (paper: 39.70 us)");
    let _ = writeln!(out, "  stack push:       {push:6.2} us   (paper: 11.10 us)");
    let _ = writeln!(out, "  stack pop:        {pop:6.2} us   (paper:  8.90 us)");
    let _ = writeln!(
        out,
        "  event routing:    {route:6.2} us   (paper: 77.79 us)"
    );

    // Execute each instruction class 500 times through a real handler, as
    // the paper did, and report the measured virtual-time mean.
    let mut rt = Runtime::new(62);
    let src = "\
int32_t a, b;
event init():
    a = 1;
event destroy():
    return;
event read():
    b = 0;
    while b < 500:
        a = (a * 31 + 7) % 1000;
        b = b + 1;
    return a;
";
    let image = compile_source(src, 42).unwrap();
    let slot = rt.install_driver(image, 0).unwrap();
    rt.run_until_idle();
    let t0 = rt.now();
    let (_, i0) = rt.stats();
    rt.request(slot, upnp_vm::runtime::PendingKind::Read, vec![]);
    rt.run_until_idle();
    let dt = rt.now().since(t0).as_micros_f64();
    let (_, i1) = rt.stats();
    let per_instr = dt / (i1 - i0) as f64;
    let _ = writeln!(
        out,
        "  measured loop (500 iters, {} instructions): {per_instr:.2} us/instruction",
        i1 - i0
    );
    out
}

/// Table 3: driver development effort and memory footprint, DSL vs native.
pub fn exp_table3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — driver SLoC and size, µPnP DSL vs native C:");
    let _ = writeln!(
        out,
        "  {:<24} {:>9} {:>9} {:>9} {:>11}",
        "", "DSL SLoC", "DSL B", "C SLoC", "C B (paper)"
    );
    let mut dsl_sloc_total = 0usize;
    let mut dsl_bytes_total = 0usize;
    let mut c_sloc_total = 0usize;
    let mut c_bytes_total = 0usize;
    for ((name, dsl_src), (_, c_src)) in upnp_dsl::drivers::PAPER_DRIVERS
        .iter()
        .zip(upnp_native_drivers::c_sources::PAPER_C_DRIVERS)
    {
        let dsl_lines = count_dsl(dsl_src);
        let image = compile_source(dsl_src, 1).expect("shipped drivers compile");
        let dsl_bytes = image.size_bytes();
        let c_lines = count_c(c_src);
        let c_bytes =
            upnp_native_drivers::size_model::paper_flash_bytes(name).expect("paper drivers");
        let _ = writeln!(
            out,
            "  {:<24} {:>9} {:>9} {:>9} {:>11}",
            name, dsl_lines, dsl_bytes, c_lines, c_bytes
        );
        dsl_sloc_total += dsl_lines;
        dsl_bytes_total += dsl_bytes;
        c_sloc_total += c_lines;
        c_bytes_total += c_bytes;
    }
    let _ = writeln!(
        out,
        "  {:<24} {:>9} {:>9} {:>9} {:>11}",
        "Average",
        dsl_sloc_total / 4,
        dsl_bytes_total / 4,
        c_sloc_total / 4,
        c_bytes_total / 4
    );
    let _ = writeln!(
        out,
        "  SLoC reduction: {:.0}% (paper: 52%)   size reduction: {:.0}% (paper: 94%)",
        (1.0 - dsl_sloc_total as f64 / c_sloc_total as f64) * 100.0,
        (1.0 - dsl_bytes_total as f64 / c_bytes_total as f64) * 100.0,
    );
    let _ = writeln!(out, "  paper DSL rows: 15/30B, 19/55B, 43/150B, 122/234B");
    out
}

/// One full plug pipeline in a fresh world; returns the timeline.
pub fn run_plug_pipeline(seed: u64, device: DeviceTypeId) -> upnp_core::thing::PlugTimeline {
    let config = WorldConfig {
        seed,
        ..WorldConfig::default()
    };
    let mut w = World::new(config);
    w.add_manager();
    let thing = w.add_thing();
    w.add_client();
    w.star_topology();
    w.plug_and_wait(thing, 0, device)
}

/// Table 4: network operation timings over `runs` repetitions.
pub fn exp_table4(runs: usize) -> String {
    let mut rows: Vec<(&str, Vec<f64>, f64)> = vec![
        ("Generate Multicast Address", Vec::new(), 2.59),
        ("Join Multicast Group", Vec::new(), 5.44),
        ("Request driver", Vec::new(), 53.91),
        ("Install Driver", Vec::new(), 59.50),
        ("Advertise Peripheral", Vec::new(), 45.37),
        ("Total time", Vec::new(), 188.53),
    ];
    for run in 0..runs {
        let tl = run_plug_pipeline(0x4000 + run as u64, prototypes::TMP36);
        let gen = tl.generate_addr.unwrap().as_millis_f64();
        let join = tl.join_group.unwrap().as_millis_f64();
        let request = tl.request_driver().unwrap().as_millis_f64();
        let install = tl.install_driver().unwrap().as_millis_f64();
        let advertise = tl.advertise.unwrap().as_millis_f64();
        rows[0].1.push(gen);
        rows[1].1.push(join);
        rows[2].1.push(request);
        rows[3].1.push(install);
        rows[4].1.push(advertise);
        rows[5].1.push(gen + join + request + install + advertise);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4 — peripheral announcement and driver installation ({runs} runs):"
    );
    let _ = writeln!(
        out,
        "  {:<28} {:>10} {:>8} {:>12}",
        "", "mean (ms)", "σ (ms)", "paper (ms)"
    );
    for (name, samples, paper) in &rows {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let _ = writeln!(
            out,
            "  {:<28} {:>10.2} {:>8.2} {:>12.2}",
            name,
            mean,
            var.sqrt(),
            paper
        );
    }
    let _ = writeln!(
        out,
        "  note: the paper's five rows sum to 166.81 ms though it prints a"
    );
    let _ = writeln!(out, "  188.53 ms total; we report the row sum.");
    out
}

/// §8: the complete plug-to-usable pipeline.
pub fn exp_sec8_total() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "§8 — complete peripheral integration latency:");
    for device in [prototypes::TMP36, prototypes::ID20LA, prototypes::BMP180] {
        let tl = run_plug_pipeline(0x8000 + device.raw() as u64, device);
        let scan = tl.scan.unwrap().as_millis_f64();
        let total = tl.total().unwrap().as_millis_f64();
        let _ = writeln!(
            out,
            "  {device}: scan {scan:6.1} ms, plug-to-advertised {total:6.1} ms"
        );
    }
    let _ = writeln!(
        out,
        "  paper: 300 ms identification + 188.53 ms network = 488.53 ms"
    );
    out
}

/// Extension (paper §9 future work): multicast discovery in multi-hop
/// topologies — latency and the radio frames spent, per chain depth.
pub fn exp_multihop_discovery(max_depth: usize) -> String {
    use upnp_net::link::LinkQuality;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension (§9) — multicast discovery over multi-hop chains:"
    );
    let _ = writeln!(
        out,
        "  {:>6} {:>16} {:>14}",
        "hops", "round trip (ms)", "radio frames"
    );
    for depth in 1..=max_depth {
        let config = WorldConfig {
            seed: 0x9000 + depth as u64,
            ..WorldConfig::default()
        };
        let mut w = World::new(config);
        let mgr = w.add_manager();
        let mut prev = mgr;
        let mut leaf = None;
        for _ in 0..depth {
            let t = w.add_thing();
            w.link(prev, w.thing_node(t), LinkQuality::PERFECT);
            prev = w.thing_node(t);
            leaf = Some(t);
        }
        let client = w.add_client();
        w.link(mgr, w.client(client).node, LinkQuality::PERFECT);
        w.build_tree(mgr);
        w.plug_and_wait(leaf.expect("depth >= 1"), 0, prototypes::TMP36);

        let frames_before = w.net.stats().frames_tx;
        let t0 = w.now();
        let found = w.client_discover(client, prototypes::TMP36);
        let latency = w.now().since(t0).as_millis_f64();
        let frames = w.net.stats().frames_tx - frames_before;
        let _ = writeln!(
            out,
            "  {:>6} {:>16.2} {:>14}   ({} thing(s) found)",
            depth,
            latency,
            frames,
            found.len()
        );
    }
    let _ = writeln!(
        out,
        "  (the paper leaves multi-hop analysis to future work; this is the\n   reproduction's extension)"
    );
    out
}

/// Runs every experiment, in paper order.
pub fn run_all(fig12_samples: usize, table4_runs: usize) -> String {
    let mut out = String::new();
    out.push_str(&exp_fig3_waveform(prototypes::ID20LA));
    out.push('\n');
    out.push_str(&exp_fig5_waveform());
    out.push('\n');
    out.push_str(&exp_sec61_identification());
    out.push('\n');
    out.push_str(&exp_fig12(fig12_samples));
    out.push('\n');
    out.push_str(&exp_table2());
    out.push('\n');
    out.push_str(&exp_sec62_vm());
    out.push('\n');
    out.push_str(&exp_table3());
    out.push('\n');
    out.push_str(&exp_table4(table4_runs));
    out.push('\n');
    out.push_str(&exp_sec8_total());
    out.push('\n');
    out.push_str(&exp_multihop_discovery(4));
    out.push('\n');
    out.push_str(&crate::ablations::run_all());
    out
}

/// Used by tests and the Criterion harness: one plug pipeline end to end.
pub fn bench_plug_once(seed: u64) -> f64 {
    run_plug_pipeline(seed, prototypes::TMP36)
        .total()
        .map(|d| d.as_millis_f64())
        .unwrap_or(0.0)
}

/// A `ThingId` helper for external benches.
pub fn first_thing() -> ThingId {
    ThingId(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reports_four_intervals() {
        let s = exp_fig3_waveform(prototypes::ID20LA);
        assert!(s.contains("T1"));
        assert!(s.contains("T4"));
        assert!(s.contains("0xed3f0ac1"));
    }

    #[test]
    fn fig5_shows_three_slots_and_eight_pulses() {
        let s = exp_fig5_waveform();
        assert!(s.contains("channelA EN"));
        assert!(s.contains("channelB EN"));
        assert!(s.contains("channelC EN"));
        assert!(s.contains("output pulses observed: 8"));
    }

    #[test]
    fn sec61_reports_both_distributions() {
        let s = exp_sec61_identification();
        assert!(s.contains("prototypes"));
        assert!(s.contains("random"));
        assert!(s.contains("paper"));
    }

    #[test]
    fn fig12_has_all_rates_and_headline_ratio() {
        let s = exp_fig12(8);
        for rate in ["1", "1000000"] {
            assert!(s.contains(rate), "missing rate {rate} in:\n{s}");
        }
        assert!(s.contains("ratio"));
    }

    #[test]
    fn table2_renders_total() {
        let s = exp_table2();
        assert!(s.contains("Total"));
        assert!(s.contains("14231"));
    }

    #[test]
    fn sec62_reports_all_four_metrics() {
        let s = exp_sec62_vm();
        assert!(s.contains("instruction mean"));
        assert!(s.contains("stack push"));
        assert!(s.contains("stack pop"));
        assert!(s.contains("event routing"));
        assert!(s.contains("us/instruction"));
    }

    #[test]
    fn table3_reports_reductions() {
        let s = exp_table3();
        assert!(s.contains("SLoC reduction"));
        assert!(s.contains("BMP180"));
    }

    #[test]
    fn table4_runs_and_reports_rows() {
        let s = exp_table4(3);
        assert!(s.contains("Generate Multicast Address"));
        assert!(s.contains("Install Driver"));
        assert!(s.contains("Total time"));
    }

    #[test]
    fn sec8_reports_three_devices() {
        let s = exp_sec8_total();
        assert!(s.contains("0xad1cbe01"));
        assert!(s.contains("0xed3f0ac1"));
        assert!(s.contains("0xed3fbda1"));
    }
}
