//! Table 4 regeneration cost: the full plug-to-advertised pipeline in a
//! fresh world (identification scan, driver request, OTA upload, install,
//! group join, advertisement).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use upnp_bench::experiments::bench_plug_once;

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_network");
    g.sample_size(20);
    let mut seed = 0u64;
    g.bench_function("plug_pipeline_end_to_end", |b| {
        b.iter(|| {
            seed += 1;
            black_box(bench_plug_once(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
