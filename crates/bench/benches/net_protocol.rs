//! Network-layer kernels: message codec, multicast address generation,
//! SMRF planning and frame-level sends.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use upnp_net::addr;
use upnp_net::link::LinkQuality;
use upnp_net::msg::{AdvertisedPeripheral, Message, MessageBody};
use upnp_net::rpl::{Dodag, Topology};
use upnp_net::tlv::{Tlv, TlvType};
use upnp_net::{Datagram, Network};
use upnp_sim::{SimDuration, SimTime};

fn bench_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_protocol");

    g.bench_function("generate_multicast_address", |b| {
        b.iter(|| black_box(addr::peripheral_group(0x2001_0db8_0000, 0xed3f_0ac1)))
    });

    let adv = Message {
        seq: 7,
        body: MessageBody::UnsolicitedAdvertisement(vec![AdvertisedPeripheral {
            peripheral: 0xad1c_be01,
            tlvs: vec![
                Tlv::text(TlvType::Name, "TMP36 temperature sensor"),
                Tlv::text(TlvType::Unit, "degC"),
                Tlv::new(TlvType::Channel, vec![0]),
            ],
        }]),
    };
    let wire = adv.encode();
    g.bench_function("encode_advertisement", |b| {
        b.iter(|| black_box(adv.encode()))
    });
    g.bench_function("decode_advertisement", |b| {
        b.iter(|| black_box(Message::decode(&wire).unwrap()))
    });

    g.bench_function("smrf_plan_64_nodes", |b| {
        // A binary tree of 64 nodes with 8 members.
        let mut topo = Topology::new(64);
        for i in 1..64 {
            topo.link(i, (i - 1) / 2, LinkQuality::PERFECT);
        }
        let dodag = Dodag::build(&topo, 0);
        let members: std::collections::BTreeSet<usize> = (56..64).collect();
        b.iter(|| black_box(upnp_net::smrf::plan(&dodag, 5, &members).unwrap()))
    });

    g.bench_function("unicast_send_3_hops", |b| {
        let mut net = Network::new(0x2001_0db8_0000, 1);
        let n: Vec<_> = (0..4).map(|_| net.add_node()).collect();
        for w in n.windows(2) {
            net.link(w[0], w[1], LinkQuality::PERFECT);
        }
        net.build_tree(n[0]);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_secs(1);
            let d = Datagram {
                src: net.addr_of(n[3]),
                dst: net.addr_of(n[0]),
                src_port: addr::MCAST_PORT,
                dst_port: addr::MCAST_PORT,
                payload: vec![0; 32].into(),
            };
            black_box(net.send(t, n[3], d));
            net.poll(SimTime::MAX)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
