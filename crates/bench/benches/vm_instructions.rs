//! §6.2 micro-benchmarks: bytecode instruction execution and stack
//! push/pop, measured on the host (the paper's AVR-projected values come
//! from `experiments --sec 6.2`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use upnp_dsl::compile_source;
use upnp_dsl::events::ids;
use upnp_vm::vm::DriverInstance;

fn instance(src: &str) -> DriverInstance {
    DriverInstance::new(compile_source(src, 1).expect("compile"))
}

/// A handler that executes ~3500 mixed integer instructions.
const INT_LOOP: &str = "\
int32_t a, b;
event init():
    return;
event destroy():
    return;
event read():
    b = 0;
    while b < 500:
        a = (a * 31 + 7) % 1000;
        b = b + 1;
    return a;
";

/// A float-heavy handler (soft-float cost path).
const FLOAT_LOOP: &str = "\
float x;
int32_t i;
event init():
    return;
event destroy():
    return;
event read():
    i = 0;
    x = 1.0;
    while i < 200:
        x = (x * 1.01) + 0.5;
        i = i + 1;
    return x;
";

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_instructions");

    let mut int_driver = instance(INT_LOOP);
    int_driver.run_handler(ids::INIT, &[]);
    g.bench_function("integer_loop_3500_instr", |b| {
        b.iter(|| {
            let out = int_driver.run_handler(ids::READ, &[]);
            black_box(out.instructions)
        })
    });

    let mut float_driver = instance(FLOAT_LOOP);
    float_driver.run_handler(ids::INIT, &[]);
    g.bench_function("float_loop_1400_instr", |b| {
        b.iter(|| {
            let out = float_driver.run_handler(ids::READ, &[]);
            black_box(out.instructions)
        })
    });

    // Push/pop micro: a handler that only moves the stack.
    let mut push_pop = instance(
        "int32_t a;\nevent init():\n    return;\nevent destroy():\n    return;\nevent read():\n    a = 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8;\n    return a;\n",
    );
    g.bench_function("push_pop_chain", |b| {
        b.iter(|| black_box(push_pop.run_handler(ids::READ, &[])))
    });

    // Dispatch cost floor: the smallest possible handler.
    let mut tiny = instance("event init():\n    return;\nevent destroy():\n    return;\n");
    g.bench_function("empty_handler", |b| {
        b.iter(|| black_box(tiny.run_handler(ids::INIT, &[])))
    });

    g.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
