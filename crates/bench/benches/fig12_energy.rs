//! Figure 12 regeneration cost: single sweep points and the full figure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use upnp_energy::deployment::{simulate_year, Technology, YearConfig};
use upnp_hw::peripheral::Interconnect;

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_energy");
    g.sample_size(20);
    let config = YearConfig {
        ident_samples: 16,
        ..YearConfig::default()
    };
    for (name, tech) in [
        ("usb", Technology::UsbHost),
        ("upnp_adc", Technology::Upnp(Interconnect::Adc)),
        ("upnp_i2c", Technology::Upnp(Interconnect::I2c)),
        ("upnp_uart", Technology::Upnp(Interconnect::Uart)),
    ] {
        g.bench_with_input(BenchmarkId::new("year_at_hourly", name), &tech, |b, &t| {
            b.iter(|| black_box(simulate_year(t, 60, &config)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
