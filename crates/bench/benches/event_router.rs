//! §6.2: event-router throughput — "the performance of the event router
//! scales linearly in terms of number of events processed".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use upnp_sim::CpuCost;
use upnp_vm::router::{Endpoint, EventRouter, RoutedEvent};

fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_router");
    for &n in &[1usize, 10, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("post_and_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut r = EventRouter::new();
                for i in 0..n {
                    r.post(RoutedEvent {
                        dst: Endpoint::Driver((i % 4) as u8),
                        event: if i % 10 == 0 { 66 } else { 2 },
                        args: Vec::new(),
                    });
                }
                let mut cost = CpuCost::ZERO;
                while let Some(ev) = r.next(&mut cost) {
                    black_box(&ev);
                }
                black_box(cost)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
