//! Wall-clock cost of the ablation computations (the ablation *results*
//! are printed by `experiments --ablations`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use upnp_bench::ablations;
use upnp_hw::components::ToleranceClass;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    g.bench_function("decode_error_rate_50_trials", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(ablations::decode_error_rate(
                ToleranceClass::OnePercent,
                50,
                seed,
            ))
        })
    });

    g.bench_function("discovery_traffic_20_things", |b| {
        b.iter(|| black_box(ablations::discovery_traffic(20, 3)))
    });

    g.bench_function("slot_policy_latency", |b| {
        b.iter(|| black_box(ablations::slot_policy_latency_ms()))
    });

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
