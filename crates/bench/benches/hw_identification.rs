//! Hardware-identification kernels: resistor-set solving (the online
//! tool) and the full scan + decode path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use upnp_hw::board::ControlBoard;
use upnp_hw::channels::ChannelId;
use upnp_hw::encoding::PulseCodec;
use upnp_hw::id::{prototypes, DeviceTypeId};
use upnp_hw::peripheral::{Interconnect, PeripheralBoard};
use upnp_hw::solver::solve_resistors;
use upnp_sim::SimTime;

fn bench_hw(c: &mut Criterion) {
    let mut g = c.benchmark_group("hw_identification");

    g.bench_function("solve_resistor_set", |b| {
        b.iter(|| black_box(solve_resistors(prototypes::BMP180).unwrap()))
    });

    g.bench_function("codec_roundtrip_256", |b| {
        let codec = PulseCodec::paper();
        b.iter(|| {
            for byte in 0..=255u8 {
                let t = codec.encode(byte);
                black_box(codec.decode(t).unwrap());
            }
        })
    });

    g.bench_function("scan_one_peripheral", |b| {
        b.iter(|| {
            let mut board = ControlBoard::ideal();
            let p =
                PeripheralBoard::manufacture_ideal(prototypes::TMP36, Interconnect::Adc).unwrap();
            board.plug(ChannelId(0), p).unwrap();
            black_box(board.scan(SimTime::ZERO, 25.0))
        })
    });

    g.bench_function("scan_three_peripherals", |b| {
        b.iter(|| {
            let mut board = ControlBoard::ideal();
            for (ch, id) in [
                (0u8, prototypes::TMP36),
                (1, prototypes::ID20LA),
                (2, prototypes::BMP180),
            ] {
                let p = PeripheralBoard::manufacture_ideal(id, Interconnect::Adc).unwrap();
                board.plug(ChannelId(ch), p).unwrap();
            }
            black_box(board.scan(SimTime::ZERO, 25.0))
        })
    });

    g.bench_function("random_id_solve_and_verify", |b| {
        let mut n = 1u32;
        b.iter(|| {
            n = n.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let id = DeviceTypeId::new(n | 1);
            black_box(solve_resistors(id).unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_hw);
criterion_main!(benches);
