//! Compiler pipeline benchmarks: lexing through image serialization for
//! each shipped driver (the toolchain a driver developer exercises).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use upnp_dsl::{compile_source, drivers};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsl_compiler");
    for (name, src) in [
        ("tmp36", drivers::TMP36),
        ("hih4030", drivers::HIH4030),
        ("id20la", drivers::ID20LA),
        ("bmp180", drivers::BMP180),
    ] {
        g.bench_with_input(BenchmarkId::new("compile", name), &src, |b, src| {
            b.iter(|| black_box(compile_source(src, 1).expect("compiles")))
        });
    }
    // Round-trip through the wire format.
    let image = compile_source(drivers::BMP180, 1).unwrap();
    let bytes = image.to_bytes();
    g.bench_function("image_decode_bmp180", |b| {
        b.iter(|| black_box(upnp_dsl::image::DriverImage::from_bytes(&bytes).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
