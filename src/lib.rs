//! # micropnp — a reproduction of *µPnP: Plug and Play Peripherals for
//! the Internet of Things* (EuroSys 2015)
//!
//! µPnP gives resource-constrained IoT devices true plug-and-play
//! peripheral integration through three coupled contributions:
//!
//! 1. **hardware identification** — four resistors on the peripheral,
//!    chained monostable multivibrators on the control board, a 32-bit
//!    device-type identifier decoded from pulse widths ([`hw`]);
//! 2. **a driver DSL and VM** — typed, event-based driver programs
//!    compiled to compact bytecode, deployed over the air and executed by
//!    a stack-based virtual machine ([`dsl`], [`vm`]);
//! 3. **an IPv6-multicast network architecture** — per-peripheral-type
//!    multicast groups, a 17-message UDP protocol (plus 3
//!    distribution-tier extensions), discovery and read/stream/write
//!    interactions ([`net`], [`core`], [`distro`]).
//!
//! This facade re-exports the workspace crates under one name. Start with
//! [`core::world::World`]:
//!
//! ```
//! use micropnp::core::world::{World, WorldConfig};
//! use micropnp::hw::id::prototypes;
//! use micropnp::net::msg::Value;
//!
//! let mut world = World::new(WorldConfig::default());
//! world.add_manager();
//! let thing = world.add_thing();
//! let client = world.add_client();
//! world.star_topology();
//!
//! // Plug a TMP36 in: identification, OTA driver install, advertisement.
//! world.thing_mut(thing).runtime.hw.env.temperature_c = 23.0;
//! world.plug_and_wait(thing, 0, prototypes::TMP36);
//!
//! // Read it remotely.
//! let value = world.client_read(client, thing, prototypes::TMP36).unwrap();
//! assert!(matches!(value, Value::F32(t) if (t - 23.0).abs() < 1.5));
//! ```

pub use upnp_bus as bus;
pub use upnp_core as core;
pub use upnp_distro as distro;
pub use upnp_dsl as dsl;
pub use upnp_energy as energy;
pub use upnp_hw as hw;
pub use upnp_native_drivers as native_drivers;
pub use upnp_net as net;
pub use upnp_sim as sim;
pub use upnp_vm as vm;
