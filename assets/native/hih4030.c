/*
 * HIH-4030 relative-humidity sensor driver — native C baseline.
 *
 * Ratiometric analog sensor on the ADC: Vout = Vs * (0.0062 * RH + 0.16)
 * with the 25 °C temperature-correction factor applied in software,
 * matching the µPnP DSL driver's semantics.
 */

#include <avr/io.h>
#include <avr/interrupt.h>
#include <stdint.h>

#include "driver_api.h"

#define HIH4030_ADC_CHANNEL 1
#define ADC_VREF            3.3f
#define ADC_FULL_SCALE      1023.0f
#define HIH_ZERO_OFFSET     0.16f
#define HIH_SLOPE           0.0062f
#define HIH_TEMP_FACTOR_25C 1.0006f

static volatile uint16_t hih_raw;
static volatile uint8_t  hih_sample_ready;
static uint8_t           hih_initialized;

static void hih_adc_setup(void)
{
    ADMUX  = (1 << REFS0) | (HIH4030_ADC_CHANNEL & 0x1f);
    ADCSRA = (1 << ADEN) | (1 << ADIE)
           | (1 << ADPS2) | (1 << ADPS1);
}

ISR(ADC_vect)
{
    uint16_t lo = ADCL;
    uint16_t hi = ADCH;
    hih_raw = (hi << 8) | lo;
    hih_sample_ready = 1;
}

int hih4030_init(void)
{
    if (hih_initialized) {
        return DRIVER_EALREADY;
    }
    hih_adc_setup();
    hih_sample_ready = 0;
    hih_initialized = 1;
    return DRIVER_OK;
}

void hih4030_destroy(void)
{
    ADCSRA &= (uint8_t)~(1 << ADEN);
    hih_initialized = 0;
}

static int hih_start_conversion(void)
{
    if (!hih_initialized) {
        return DRIVER_ENODEV;
    }
    hih_sample_ready = 0;
    ADCSRA |= (1 << ADSC);
    return DRIVER_OK;
}

int hih4030_read(float *out_rh)
{
    uint16_t raw;
    float volts;
    float rh_sensor;
    float rh_true;

    if (out_rh == 0) {
        return DRIVER_EINVAL;
    }
    if (hih_start_conversion() != DRIVER_OK) {
        return DRIVER_ENODEV;
    }
    while (!hih_sample_ready) {
        sleep_until_interrupt();
    }
    raw = hih_raw;
    volts = (float)raw * ADC_VREF / ADC_FULL_SCALE;
    rh_sensor = (volts / ADC_VREF - HIH_ZERO_OFFSET) / HIH_SLOPE;
    rh_true = rh_sensor / HIH_TEMP_FACTOR_25C;
    if (rh_true < 0.0f)
        rh_true = 0.0f;
    if (rh_true > 100.0f)
        rh_true = 100.0f;
    *out_rh = rh_true;
    return DRIVER_OK;
}

int hih4030_stream_start(driver_sample_cb cb, uint16_t period_ms)
{
    if (cb == 0 || period_ms == 0) {
        return DRIVER_EINVAL;
    }
    return driver_timer_register(hih_read_cb_adapter, cb, period_ms);
}

void hih4030_stream_stop(void)
{
    driver_timer_cancel(hih_read_cb_adapter);
}
