/*
 * TMP36 analog temperature sensor driver — native C baseline.
 *
 * Hand-written reference for the ATmega128RFA1 evaluation platform,
 * matching the semantics of the µPnP DSL driver: one ADC conversion on
 * the sensor channel, converted to degrees Celsius through the
 * datasheet transfer function V = 0.5 + 0.01 * T.
 */

#include <avr/io.h>
#include <avr/interrupt.h>
#include <stdint.h>

#include "driver_api.h"

#define TMP36_ADC_CHANNEL   0
#define ADC_VREF_MILLIVOLTS 3300UL
#define ADC_FULL_SCALE      1023UL

static volatile uint16_t tmp36_raw;
static volatile uint8_t  tmp36_sample_ready;
static uint8_t           tmp36_initialized;

static void tmp36_adc_setup(void)
{
    /* AVcc reference, right-adjusted result, selected channel. */
    ADMUX  = (1 << REFS0) | (TMP36_ADC_CHANNEL & 0x1f);
    /* Enable ADC, interrupt on completion, /64 prescaler (125 kHz). */
    ADCSRA = (1 << ADEN) | (1 << ADIE)
           | (1 << ADPS2) | (1 << ADPS1);
}

ISR(ADC_vect)
{
    uint16_t lo = ADCL;
    uint16_t hi = ADCH;
    tmp36_raw = (hi << 8) | lo;
    tmp36_sample_ready = 1;
}

int tmp36_init(void)
{
    if (tmp36_initialized) {
        return DRIVER_EALREADY;
    }
    tmp36_adc_setup();
    tmp36_sample_ready = 0;
    tmp36_initialized = 1;
    return DRIVER_OK;
}

void tmp36_destroy(void)
{
    ADCSRA &= (uint8_t)~(1 << ADEN);
    tmp36_initialized = 0;
}

static int tmp36_start_conversion(void)
{
    if (!tmp36_initialized) {
        return DRIVER_ENODEV;
    }
    tmp36_sample_ready = 0;
    ADCSRA |= (1 << ADSC);
    return DRIVER_OK;
}

int tmp36_read(float *out_celsius)
{
    uint16_t raw;
    float millivolts;

    if (out_celsius == 0) {
        return DRIVER_EINVAL;
    }
    if (tmp36_start_conversion() != DRIVER_OK) {
        return DRIVER_ENODEV;
    }
    while (!tmp36_sample_ready) {
        /* The MCU idles until the conversion-complete interrupt. */
        sleep_until_interrupt();
    }
    raw = tmp36_raw;
    millivolts = (float)raw * ADC_VREF_MILLIVOLTS / ADC_FULL_SCALE;
    *out_celsius = (millivolts - 500.0f) / 10.0f;
    return DRIVER_OK;
}

int tmp36_stream_start(driver_sample_cb cb, uint16_t period_ms)
{
    if (cb == 0 || period_ms == 0) {
        return DRIVER_EINVAL;
    }
    return driver_timer_register(tmp36_read_cb_adapter, cb, period_ms);
}

void tmp36_stream_stop(void)
{
    driver_timer_cancel(tmp36_read_cb_adapter);
}
