/*
 * ID-20LA 125 kHz RFID reader driver — native C baseline.
 *
 * The reader autonomously transmits a 16-byte ASCII frame at 9600 8N1
 * per card presentation: STX, 10 data chars, 2 checksum chars, CR, LF,
 * ETX. The driver owns the USART, filters the framing characters and
 * assembles the 12-character payload, with a software timeout guarding
 * half-received frames.
 */

#include <avr/io.h>
#include <avr/interrupt.h>
#include <stdint.h>

#include "driver_api.h"

#define ID20LA_BAUD        9600UL
#define ID20LA_UBRR        ((F_CPU / (16UL * ID20LA_BAUD)) - 1)
#define ID20LA_FRAME_CHARS 12
#define ID20LA_TIMEOUT_MS  2000

#define CHAR_STX 0x02
#define CHAR_ETX 0x03
#define CHAR_CR  0x0d
#define CHAR_LF  0x0a

static volatile uint8_t id20la_buf[ID20LA_FRAME_CHARS];
static volatile uint8_t id20la_idx;
static volatile uint8_t id20la_frame_ready;
static volatile uint8_t id20la_busy;
static uint8_t          id20la_initialized;

static void id20la_usart_setup(void)
{
    UBRR1H = (uint8_t)(ID20LA_UBRR >> 8);
    UBRR1L = (uint8_t)(ID20LA_UBRR & 0xff);
    /* 8 data bits, no parity, 1 stop bit. */
    UCSR1C = (1 << UCSZ11) | (1 << UCSZ10);
    /* Enable RX with interrupt; the reader never receives. */
    UCSR1B = (1 << RXEN1) | (1 << RXCIE1);
}

static uint8_t id20la_is_framing_char(uint8_t c)
{
    return c == CHAR_STX || c == CHAR_ETX
        || c == CHAR_CR  || c == CHAR_LF;
}

ISR(USART1_RX_vect)
{
    uint8_t status = UCSR1A;
    uint8_t c = UDR1;

    if (status & ((1 << FE1) | (1 << DOR1) | (1 << UPE1))) {
        /* Framing/overrun/parity error: drop the partial frame. */
        id20la_idx = 0;
        return;
    }
    if (id20la_is_framing_char(c)) {
        return;
    }
    if (id20la_idx < ID20LA_FRAME_CHARS) {
        id20la_buf[id20la_idx] = c;
        id20la_idx++;
    }
    if (id20la_idx == ID20LA_FRAME_CHARS) {
        id20la_idx = 0;
        id20la_frame_ready = 1;
        id20la_busy = 0;
    }
}

static void id20la_timeout_cb(void)
{
    /* Half a frame and silence: resynchronise on the next STX. */
    id20la_idx = 0;
    id20la_busy = 0;
}

int id20la_init(void)
{
    if (id20la_initialized) {
        return DRIVER_EALREADY;
    }
    if (driver_uart_claim(1) != DRIVER_OK) {
        return DRIVER_EBUSY;
    }
    id20la_usart_setup();
    id20la_idx = 0;
    id20la_frame_ready = 0;
    id20la_busy = 0;
    id20la_initialized = 1;
    return DRIVER_OK;
}

void id20la_destroy(void)
{
    UCSR1B = 0;
    driver_uart_release(1);
    id20la_initialized = 0;
}

int id20la_read(uint8_t out_card[ID20LA_FRAME_CHARS])
{
    uint8_t i;

    if (out_card == 0) {
        return DRIVER_EINVAL;
    }
    if (!id20la_initialized) {
        return DRIVER_ENODEV;
    }
    if (id20la_busy) {
        return DRIVER_EBUSY;
    }
    id20la_busy = 1;
    id20la_frame_ready = 0;
    id20la_idx = 0;
    if (driver_timer_oneshot(id20la_timeout_cb, ID20LA_TIMEOUT_MS) != DRIVER_OK) {
        id20la_busy = 0;
        return DRIVER_EIO;
    }
    while (!id20la_frame_ready && id20la_busy) {
        sleep_until_interrupt();
    }
    driver_timer_cancel(id20la_timeout_cb);
    if (!id20la_frame_ready) {
        return DRIVER_ETIMEOUT;
    }
    for (i = 0; i < ID20LA_FRAME_CHARS; i++) {
        out_card[i] = id20la_buf[i];
    }
    return DRIVER_OK;
}

uint8_t id20la_checksum(const uint8_t card[ID20LA_FRAME_CHARS])
{
    uint8_t x = 0;
    uint8_t i;
    for (i = 0; i < 10; i += 2) {
        x ^= (uint8_t)((hex_nibble(card[i]) << 4) | hex_nibble(card[i + 1]));
    }
    return x;
}
