/*
 * BMP180 barometric pressure sensor driver — native C baseline.
 *
 * The most involved of the four reference drivers: the part returns
 * uncompensated temperature and pressure readings over I2C, and the
 * host must run the datasheet's integer compensation pipeline against
 * the factory calibration EEPROM. This file carries the complete bus
 * handling (TWI register level), EEPROM fetch, conversion sequencing
 * with the datasheet wait times, and the full compensation arithmetic
 * at oversampling setting 0.
 */

#include <avr/io.h>
#include <avr/interrupt.h>
#include <stdint.h>

#include "driver_api.h"

#define BMP180_ADDR          0x77
#define BMP180_REG_CALIB     0xaa
#define BMP180_REG_CHIP_ID   0xd0
#define BMP180_REG_CTRL_MEAS 0xf4
#define BMP180_REG_OUT_MSB   0xf6
#define BMP180_CHIP_ID       0x55
#define BMP180_CMD_TEMP      0x2e
#define BMP180_CMD_PRESSURE  0x34
#define BMP180_CONV_WAIT_MS  5
#define BMP180_CALIB_BYTES   22

struct bmp180_calib {
    int16_t  ac1;
    int16_t  ac2;
    int16_t  ac3;
    uint16_t ac4;
    uint16_t ac5;
    uint16_t ac6;
    int16_t  b1;
    int16_t  b2;
    int16_t  mb;
    int16_t  mc;
    int16_t  md;
};

static struct bmp180_calib bmp_cal;
static int32_t             bmp_b5;
static uint8_t             bmp_initialized;

/* ---- TWI (I2C) primitives ------------------------------------------ */

static int twi_start(uint8_t addr, uint8_t write)
{
    TWCR = (1 << TWINT) | (1 << TWSTA) | (1 << TWEN);
    while (!(TWCR & (1 << TWINT))) {
        /* spin: start condition */
    }
    TWDR = (uint8_t)((addr << 1) | (write ? 0 : 1));
    TWCR = (1 << TWINT) | (1 << TWEN);
    while (!(TWCR & (1 << TWINT))) {
        /* spin: address phase */
    }
    if ((TWSR & 0xf8) != (write ? 0x18 : 0x40)) {
        return DRIVER_EIO;
    }
    return DRIVER_OK;
}

static void twi_stop(void)
{
    TWCR = (1 << TWINT) | (1 << TWSTO) | (1 << TWEN);
}

static int twi_write_byte(uint8_t b)
{
    TWDR = b;
    TWCR = (1 << TWINT) | (1 << TWEN);
    while (!(TWCR & (1 << TWINT))) {
        /* spin: data phase */
    }
    if ((TWSR & 0xf8) != 0x28) {
        return DRIVER_EIO;
    }
    return DRIVER_OK;
}

static uint8_t twi_read_byte(uint8_t ack)
{
    TWCR = (1 << TWINT) | (1 << TWEN) | (ack ? (1 << TWEA) : 0);
    while (!(TWCR & (1 << TWINT))) {
        /* spin: data phase */
    }
    return TWDR;
}

static int bmp180_write_reg(uint8_t reg, uint8_t value)
{
    if (twi_start(BMP180_ADDR, 1) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    if (twi_write_byte(reg) != DRIVER_OK || twi_write_byte(value) != DRIVER_OK) {
        twi_stop();
        return DRIVER_EIO;
    }
    twi_stop();
    return DRIVER_OK;
}

static int bmp180_read_regs(uint8_t reg, uint8_t *out, uint8_t n)
{
    uint8_t i;
    if (twi_start(BMP180_ADDR, 1) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    if (twi_write_byte(reg) != DRIVER_OK) {
        twi_stop();
        return DRIVER_EIO;
    }
    if (twi_start(BMP180_ADDR, 0) != DRIVER_OK) {
        twi_stop();
        return DRIVER_EIO;
    }
    for (i = 0; i < n; i++) {
        out[i] = twi_read_byte(i + 1 < n);
    }
    twi_stop();
    return DRIVER_OK;
}

/* ---- Calibration ---------------------------------------------------- */

static int16_t be16(const uint8_t *p)
{
    return (int16_t)(((uint16_t)p[0] << 8) | p[1]);
}

static int bmp180_load_calibration(void)
{
    uint8_t raw[BMP180_CALIB_BYTES];
    if (bmp180_read_regs(BMP180_REG_CALIB, raw, BMP180_CALIB_BYTES) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    bmp_cal.ac1 = be16(&raw[0]);
    bmp_cal.ac2 = be16(&raw[2]);
    bmp_cal.ac3 = be16(&raw[4]);
    bmp_cal.ac4 = (uint16_t)be16(&raw[6]);
    bmp_cal.ac5 = (uint16_t)be16(&raw[8]);
    bmp_cal.ac6 = (uint16_t)be16(&raw[10]);
    bmp_cal.b1 = be16(&raw[12]);
    bmp_cal.b2 = be16(&raw[14]);
    bmp_cal.mb = be16(&raw[16]);
    bmp_cal.mc = be16(&raw[18]);
    bmp_cal.md = be16(&raw[20]);
    return DRIVER_OK;
}

/* ---- Conversions ---------------------------------------------------- */

static int bmp180_read_ut(int32_t *out_ut)
{
    uint8_t raw[2];
    if (bmp180_write_reg(BMP180_REG_CTRL_MEAS, BMP180_CMD_TEMP) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    driver_sleep_ms(BMP180_CONV_WAIT_MS);
    if (bmp180_read_regs(BMP180_REG_OUT_MSB, raw, 2) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    *out_ut = ((int32_t)raw[0] << 8) | raw[1];
    return DRIVER_OK;
}

static int bmp180_read_up(int32_t *out_up)
{
    uint8_t raw[2];
    if (bmp180_write_reg(BMP180_REG_CTRL_MEAS, BMP180_CMD_PRESSURE) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    driver_sleep_ms(BMP180_CONV_WAIT_MS);
    if (bmp180_read_regs(BMP180_REG_OUT_MSB, raw, 2) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    *out_up = ((int32_t)raw[0] << 8) | raw[1];
    return DRIVER_OK;
}

static int32_t bmp180_compensate_temp(int32_t ut)
{
    int32_t x1;
    int32_t x2;
    x1 = ((ut - (int32_t)bmp_cal.ac6) * (int32_t)bmp_cal.ac5) >> 15;
    x2 = ((int32_t)bmp_cal.mc << 11) / (x1 + bmp_cal.md);
    bmp_b5 = x1 + x2;
    return (bmp_b5 + 8) >> 4;
}

static int32_t bmp180_compensate_pressure(int32_t up)
{
    int32_t b6;
    int32_t b3;
    int32_t x1;
    int32_t x2;
    int32_t x3;
    int32_t p;
    uint32_t b4;
    uint32_t b7;

    b6 = bmp_b5 - 4000;
    x1 = ((int32_t)bmp_cal.b2 * ((b6 * b6) >> 12)) >> 11;
    x2 = ((int32_t)bmp_cal.ac2 * b6) >> 11;
    x3 = x1 + x2;
    b3 = ((((int32_t)bmp_cal.ac1 * 4 + x3)) + 2) >> 2;
    x1 = ((int32_t)bmp_cal.ac3 * b6) >> 13;
    x2 = ((int32_t)bmp_cal.b1 * ((b6 * b6) >> 12)) >> 16;
    x3 = ((x1 + x2) + 2) >> 2;
    b4 = ((uint32_t)bmp_cal.ac4 * (uint32_t)(x3 + 32768)) >> 15;
    b7 = ((uint32_t)up - (uint32_t)b3) * 50000UL;
    if (b7 < 0x80000000UL) {
        p = (int32_t)((b7 * 2) / b4);
    } else {
        p = (int32_t)((b7 / b4) * 2);
    }
    x1 = (p >> 8) * (p >> 8);
    x1 = (x1 * 3038) >> 16;
    x2 = (-7357 * p) >> 16;
    p = p + ((x1 + x2 + 3791) >> 4);
    return p;
}

/* ---- Driver entry points -------------------------------------------- */

int bmp180_init(void)
{
    uint8_t id;
    if (bmp_initialized) {
        return DRIVER_EALREADY;
    }
    TWBR = 32; /* 100 kHz SCL at 8 MHz CPU */
    if (bmp180_read_regs(BMP180_REG_CHIP_ID, &id, 1) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    if (id != BMP180_CHIP_ID) {
        return DRIVER_ENODEV;
    }
    if (bmp180_load_calibration() != DRIVER_OK) {
        return DRIVER_EIO;
    }
    bmp_initialized = 1;
    return DRIVER_OK;
}

void bmp180_destroy(void)
{
    TWCR = 0;
    bmp_initialized = 0;
}

int bmp180_read(int32_t *out_pascal)
{
    int32_t ut;
    int32_t up;

    if (out_pascal == 0) {
        return DRIVER_EINVAL;
    }
    if (!bmp_initialized) {
        return DRIVER_ENODEV;
    }
    if (bmp180_read_ut(&ut) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    (void)bmp180_compensate_temp(ut);
    if (bmp180_read_up(&up) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    *out_pascal = bmp180_compensate_pressure(up);
    return DRIVER_OK;
}

int bmp180_read_temperature(int32_t *out_deci_celsius)
{
    int32_t ut;
    if (out_deci_celsius == 0) {
        return DRIVER_EINVAL;
    }
    if (!bmp_initialized) {
        return DRIVER_ENODEV;
    }
    if (bmp180_read_ut(&ut) != DRIVER_OK) {
        return DRIVER_EIO;
    }
    *out_deci_celsius = bmp180_compensate_temp(ut);
    return DRIVER_OK;
}
