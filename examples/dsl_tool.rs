//! The µPnP driver toolchain as a command-line tool: compile a driver,
//! inspect its image, disassemble its bytecode and print the resistor set
//! its peripheral would carry.
//!
//! ```text
//! cargo run --example dsl_tool                      # tour of the shipped drivers
//! cargo run --example dsl_tool -- path/to/drv.upnp 0xDEADBEEF
//! ```

use micropnp::dsl::{compile_source, drivers, sloc};
use micropnp::hw::id::DeviceTypeId;
use micropnp::hw::solver;

fn show(name: &str, source: &str, device_id: DeviceTypeId) {
    println!("==== {name} ({device_id}) ====");
    match compile_source(source, device_id.raw()) {
        Ok(image) => {
            println!(
                "{} SLoC -> {} bytes over the air",
                sloc::count_dsl(source),
                image.size_bytes()
            );
            print!("{}", image.dump());
            match solver::solve_resistors(device_id) {
                Ok(solved) => print!("{}", solved.bill_of_materials()),
                Err(e) => println!("no resistor set: {e}"),
            }
        }
        Err(e) => println!("compile error: {e}"),
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [path, id] = &args[..] {
        let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let device_id: DeviceTypeId = id.parse().unwrap_or_else(|e| {
            eprintln!("bad device id {id}: {e}");
            std::process::exit(1);
        });
        show(path, &source, device_id);
        return;
    }

    use micropnp::hw::id::prototypes;
    show("TMP36 driver", drivers::TMP36, prototypes::TMP36);
    show(
        "ID-20LA driver (the paper's Listing 1)",
        drivers::ID20LA,
        prototypes::ID20LA,
    );
    show("BMP180 driver", drivers::BMP180, prototypes::BMP180);
}
