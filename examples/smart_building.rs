//! Smart-building scenario: a multi-hop sensor network with heterogeneous
//! peripherals — the deployment style the paper's introduction motivates.
//!
//! Three floors hang off a basement border router (the manager).
//! Facility staff plug sensors in over time; a dashboard client
//! discovers and polls them without anyone touching driver code.
//!
//! ```text
//! cargo run --example smart_building
//! ```

use micropnp::core::world::{World, WorldConfig};
use micropnp::hw::id::prototypes;
use micropnp::net::link::LinkQuality;
use micropnp::net::msg::Value;
use micropnp::sim::SimDuration;

fn main() {
    let mut world = World::new(WorldConfig::default());
    let manager = world.add_manager();

    // One Thing per floor, chained: manager - f1 - f2 - f3 (multi-hop).
    let floor1 = world.add_thing();
    let floor2 = world.add_thing();
    let floor3 = world.add_thing();
    let dashboard = world.add_client();

    world.link(manager, world.thing_node(floor1), LinkQuality::new(0.98));
    world.link(
        world.thing_node(floor1),
        world.thing_node(floor2),
        LinkQuality::new(0.95),
    );
    world.link(
        world.thing_node(floor2),
        world.thing_node(floor3),
        LinkQuality::new(0.93),
    );
    world.link(manager, world.client(dashboard).node, LinkQuality::PERFECT);
    world.build_tree(manager);

    // Different conditions per floor.
    world.thing_mut(floor1).runtime.hw.env.temperature_c = 21.0;
    world.thing_mut(floor2).runtime.hw.env.temperature_c = 23.5;
    world.thing_mut(floor2).runtime.hw.env.humidity_rh = 55.0;
    world.thing_mut(floor3).runtime.hw.env.pressure_pa = 100_800.0;

    // Staff plug peripherals in floor by floor.
    println!("== plugging peripherals ==");
    for (name, floor, channel, id) in [
        ("floor1 TMP36", floor1, 0, prototypes::TMP36),
        ("floor2 TMP36", floor2, 0, prototypes::TMP36),
        ("floor2 HIH-4030", floor2, 1, prototypes::HIH4030),
        ("floor3 BMP180", floor3, 0, prototypes::BMP180),
    ] {
        let tl = world.plug_and_wait(floor, channel, id);
        println!(
            "  {name:<18} ready in {:6.1} ms",
            tl.total().unwrap().as_millis_f64()
        );
    }

    // The dashboard discovers temperature sensors by type: one multicast,
    // answered only by the Things that actually host a TMP36.
    println!("== discovery ==");
    let temp_things = world.client_discover(dashboard, prototypes::TMP36);
    println!("  TMP36 found on {} things", temp_things.len());

    // Poll everything.
    println!("== readings ==");
    let show = |label: &str, v: Option<Value>| match v {
        Some(Value::F32(x)) => println!("  {label:<18} {x:8.2}"),
        Some(Value::I32(x)) => println!("  {label:<18} {x:8}"),
        other => println!("  {label:<18} {other:?}"),
    };
    let v = world.client_read(dashboard, floor1, prototypes::TMP36);
    show("floor1 degC", v);
    let v = world.client_read(dashboard, floor2, prototypes::TMP36);
    show("floor2 degC", v);
    let v = world.client_read(dashboard, floor2, prototypes::HIH4030);
    show("floor2 %RH", v);
    let v = world.client_read(dashboard, floor3, prototypes::BMP180);
    show("floor3 Pa", v);

    // Subscribe to a pressure stream from the top floor.
    println!("== streaming floor3 pressure ==");
    let samples = world.client_stream(dashboard, floor3, prototypes::BMP180);
    for (i, s) in samples.iter().enumerate() {
        if let Value::I32(pa) = s {
            println!("  sample {i}: {pa} Pa");
        }
    }

    // Network accounting.
    let stats = world.net.stats();
    println!("== network totals ==");
    println!("  frames transmitted : {}", stats.frames_tx);
    println!("  payload bytes      : {}", stats.bytes_tx);
    println!("  permanent drops    : {}", stats.drops);
    println!("  virtual time       : {:.2} s", world.now().as_secs_f64());
    let _ = SimDuration::ZERO;
}
