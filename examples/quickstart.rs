//! Quickstart: plug a temperature sensor into a µPnP Thing and read it
//! remotely — the complete §5/§8 pipeline in thirty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use micropnp::core::world::{World, WorldConfig};
use micropnp::hw::id::prototypes;
use micropnp::net::msg::Value;

fn main() {
    // A world: one manager (driver repository), one Thing, one client,
    // star topology over simulated 6LoWPAN.
    let mut world = World::new(WorldConfig::default());
    world.add_manager();
    let thing = world.add_thing();
    let client = world.add_client();
    world.star_topology();

    // It is 23.5 °C around the Thing.
    world.thing_mut(thing).runtime.hw.env.temperature_c = 23.5;

    // Plug the TMP36 in. Everything the paper describes happens now:
    // the interrupt fires, the resistor set is read as four timed pulses,
    // the 32-bit id decodes, the driver is fetched over the air from the
    // manager, `init` runs, the multicast group is joined and the
    // advertisement goes out.
    let timeline = world.plug_and_wait(thing, 0, prototypes::TMP36);
    println!("plugged TMP36:");
    println!(
        "  identification scan : {:7.1} ms",
        timeline.scan.unwrap().as_millis_f64()
    );
    println!(
        "  driver request      : {:7.1} ms",
        timeline.request_driver().unwrap().as_millis_f64()
    );
    println!(
        "  driver install      : {:7.1} ms",
        timeline.install_driver().unwrap().as_millis_f64()
    );
    println!(
        "  plug-to-advertised  : {:7.1} ms  (paper: 488.53 ms)",
        timeline.total().unwrap().as_millis_f64()
    );

    // The client discovered it from the unsolicited advertisement.
    let found = world.client(client).things_with(prototypes::TMP36.raw());
    println!("client discovered {} thing(s) with a TMP36", found.len());

    // Remote read over the µPnP protocol.
    let value = world
        .client_read(client, thing, prototypes::TMP36)
        .expect("read completes");
    match value {
        Value::F32(celsius) => println!("remote temperature read: {celsius:.2} degC"),
        other => println!("unexpected value: {other:?}"),
    }
}
