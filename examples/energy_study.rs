//! Energy study: regenerate Figure 12's headline — µPnP identification
//! versus an always-powered USB host controller over a one-year
//! deployment.
//!
//! ```text
//! cargo run --release --example energy_study
//! ```

use micropnp::energy::deployment::{simulate_year, Technology, YearConfig};
use micropnp::energy::ident::{ident_energy_stats, random_ids};
use micropnp::hw::id::prototypes;
use micropnp::hw::peripheral::Interconnect;
use micropnp::sim::SimRng;

fn main() {
    // §6.1: the identification-energy distribution.
    println!("== identification energy (section 6.1) ==");
    let protos = ident_energy_stats(&prototypes::ALL);
    println!(
        "prototype peripherals: {:.0}-{:.0} ms, {:.2}-{:.2} mJ (paper: 220-300 ms, 2.48-6.76 mJ)",
        protos.min_time_s * 1e3,
        protos.max_time_s * 1e3,
        protos.min_energy_j * 1e3,
        protos.max_energy_j * 1e3,
    );
    let mut rng = SimRng::seed(99);
    let random = ident_energy_stats(&random_ids(300, &mut rng));
    println!(
        "random id space:       {:.0}-{:.0} ms, {:.2}-{:.2} mJ (mean {:.2} mJ)",
        random.min_time_s * 1e3,
        random.max_time_s * 1e3,
        random.min_energy_j * 1e3,
        random.max_energy_j * 1e3,
        random.mean_energy_j * 1e3,
    );

    // Figure 12: the sweep.
    println!("\n== one-year deployment energy (figure 12) ==");
    let config = YearConfig::default();
    println!(
        "{:>10} {:>13} {:>13} {:>13} {:>13}",
        "rate (min)", "USB host (J)", "uPnP+ADC (J)", "uPnP+I2C (J)", "uPnP+UART (J)"
    );
    for rate in micropnp::energy::deployment::FIGURE_12_RATES {
        let usb = simulate_year(Technology::UsbHost, rate, &config);
        let adc = simulate_year(Technology::Upnp(Interconnect::Adc), rate, &config);
        let i2c = simulate_year(Technology::Upnp(Interconnect::I2c), rate, &config);
        let uart = simulate_year(Technology::Upnp(Interconnect::Uart), rate, &config);
        println!(
            "{rate:>10} {:>13.3e} {:>13.3e} {:>13.3e} {:>13.3e}",
            usb.energy_j, adc.energy_j, i2c.energy_j, uart.energy_j
        );
    }

    // The headline claim.
    let usb = simulate_year(Technology::UsbHost, 60, &config).energy_j;
    let upnp = simulate_year(Technology::Upnp(Interconnect::Adc), 60, &config).energy_j;
    println!(
        "\nhourly changes: USB consumes {:.0}x more energy than uPnP+ADC (paper: >10^4 x)",
        usb / upnp
    );
}
