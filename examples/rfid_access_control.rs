//! RFID access control: the paper's Listing 1 driver in action.
//!
//! A door Thing carries an ID-20LA card reader; a door-controller client
//! reads card swipes remotely and decides access — exercising the UART
//! split-phase path (newdata per byte, frame filtering, array return).
//!
//! ```text
//! cargo run --example rfid_access_control
//! ```

use micropnp::core::world::{World, WorldConfig};
use micropnp::hw::id::prototypes;
use micropnp::net::msg::Value;

const AUTHORISED: [&str; 2] = ["0415AB09CD", "11C0FFEE22"];

fn main() {
    let mut world = World::new(WorldConfig::default());
    world.add_manager();
    let door = world.add_thing();
    let controller = world.add_client();
    world.star_topology();

    // Plug the reader in; Listing 1's driver arrives over the air.
    let tl = world.plug_and_wait(door, 0, prototypes::ID20LA);
    println!(
        "ID-20LA ready in {:.1} ms (driver image {} bytes over the air)",
        tl.total().unwrap().as_millis_f64(),
        micropnp::dsl::compile_source(micropnp::dsl::drivers::ID20LA, prototypes::ID20LA.raw())
            .unwrap()
            .size_bytes(),
    );

    // People swipe cards at the door.
    let swipes = ["0415AB09CD", "DEADBEEF99", "11C0FFEE22"];
    for card in swipes {
        // The card enters the reader field...
        world.thing_mut(door).runtime.hw.env.present_card(card);
        world.thing_mut(door).runtime.pump_uart();
        // ...and the controller polls the door.
        let value = world
            .client_read(controller, door, prototypes::ID20LA)
            .expect("reader answers");
        let Value::Bytes(bytes) = value else {
            println!("  no card read");
            continue;
        };
        let id = std::str::from_utf8(&bytes[..10]).unwrap_or("??????????");
        let verdict = if AUTHORISED.contains(&id) {
            "ACCESS GRANTED"
        } else {
            "access denied"
        };
        println!("  card {id}: {verdict}");
    }

    // The reader also reports errors as prioritized events: a read with no
    // card in the field hits the driver's timeOut handler (2 s deadline)
    // and the Thing answers with an empty value instead of hanging.
    let empty = world.client_read(controller, door, prototypes::ID20LA);
    println!("poll without a card: {empty:?} (driver timeOut handler ran)");
}
