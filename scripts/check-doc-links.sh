#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/
# points at a file that exists (anchors are stripped; external links
# are ignored). CI runs this next to `cargo doc`, so a renamed or
# deleted document breaks the build instead of rotting quietly.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
    dir=$(dirname "$doc")
    # Pull out the (target) of every [text](target) markdown link.
    while IFS= read -r link; do
        case "$link" in
        http://* | https://* | "#"*) continue ;;
        esac
        target="$dir/${link%%#*}"
        if [ ! -e "$target" ]; then
            echo "broken link in $doc: $link" >&2
            fail=1
        fi
    done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "doc links ok"
