//! Cross-crate integration tests: larger deployments, lossy networks,
//! hot-swapping and driver lifecycle management.

use micropnp::core::world::{World, WorldConfig};
use micropnp::hw::id::prototypes;
use micropnp::net::link::LinkQuality;
use micropnp::net::msg::Value;

#[test]
fn ten_thing_deployment_discovers_and_reads_everything() {
    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let things: Vec<_> = (0..10).map(|_| w.add_thing()).collect();
    let client = w.add_client();
    w.star_topology();

    // Alternate temperature and pressure sensors across the fleet.
    for (i, &t) in things.iter().enumerate() {
        let dev = if i % 2 == 0 {
            w.thing_mut(t).runtime.hw.env.temperature_c = 20.0 + i as f64;
            prototypes::TMP36
        } else {
            w.thing_mut(t).runtime.hw.env.pressure_pa = 100_000.0 + 100.0 * i as f64;
            prototypes::BMP180
        };
        w.plug_and_wait(t, 0, dev);
    }

    // One multicast discovery per type reaches exactly the right half.
    let with_temp = w.client_discover(client, prototypes::TMP36);
    let with_pressure = w.client_discover(client, prototypes::BMP180);
    assert_eq!(with_temp.len(), 5);
    assert_eq!(with_pressure.len(), 5);

    // Every sensor answers a remote read with its own environment.
    for (i, &t) in things.iter().enumerate() {
        if i % 2 == 0 {
            let v = w.client_read(client, t, prototypes::TMP36).unwrap();
            let Value::F32(c) = v else { panic!("{v:?}") };
            assert!((c - (20.0 + i as f32)).abs() < 1.5, "thing {i}: {c}");
        } else {
            let v = w.client_read(client, t, prototypes::BMP180).unwrap();
            let Value::I32(pa) = v else { panic!("{v:?}") };
            assert!((pa as f64 - (100_000.0 + 100.0 * i as f64)).abs() < 60.0);
        }
    }

    // The manager uploaded each driver type once per thing that needed it.
    assert_eq!(w.manager().uploads_served, 10);
}

#[test]
fn plug_pipeline_survives_lossy_links() {
    // 85 % PRR on every link: MAC retries must carry the pipeline through.
    let mut w = World::new(WorldConfig::default());
    let mgr = w.add_manager();
    let thing = w.add_thing();
    let client = w.add_client();
    w.link(mgr, w.thing_node(thing), LinkQuality::new(0.85));
    w.link(mgr, w.client(client).node, LinkQuality::new(0.85));
    w.build_tree(mgr);

    w.thing_mut(thing).runtime.hw.env.temperature_c = 25.0;
    w.plug_and_wait(thing, 0, prototypes::TMP36);
    assert!(w
        .thing(thing)
        .served_peripherals()
        .contains(&prototypes::TMP36.raw()));

    // Reads may need a few attempts end-to-end; the protocol itself is
    // fire-and-forget, so retry at the application level as a real client
    // would.
    let mut value = None;
    for _ in 0..5 {
        value = w.client_read(client, thing, prototypes::TMP36);
        if value.is_some() {
            break;
        }
    }
    assert!(matches!(value, Some(Value::F32(_))), "{value:?}");
}

#[test]
fn hot_swap_switches_drivers() {
    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let thing = w.add_thing();
    let client = w.add_client();
    w.star_topology();

    w.thing_mut(thing).runtime.hw.env.temperature_c = 22.0;
    w.plug_and_wait(thing, 0, prototypes::TMP36);
    let v = w.client_read(client, thing, prototypes::TMP36).unwrap();
    assert!(matches!(v, Value::F32(_)));

    // Swap the temperature sensor for a humidity sensor on the same
    // channel.
    w.unplug(thing, 0);
    w.run_until_idle();
    w.thing_mut(thing).runtime.hw.env.humidity_rh = 61.0;
    w.plug_and_wait(thing, 0, prototypes::HIH4030);

    assert_eq!(
        w.thing(thing).served_peripherals(),
        vec![prototypes::HIH4030.raw()]
    );
    let v = w.client_read(client, thing, prototypes::HIH4030).unwrap();
    let Value::F32(rh) = v else { panic!("{v:?}") };
    assert!((30.0..100.0).contains(&rh), "humidity {rh}");
    // The old type no longer answers.
    let v = w.client_read(client, thing, prototypes::TMP36).unwrap();
    assert_eq!(v, Value::None);
}

#[test]
fn manager_inventories_the_whole_fleet() {
    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let t1 = w.add_thing();
    let t2 = w.add_thing();
    w.star_topology();
    w.plug_and_wait(t1, 0, prototypes::TMP36);
    w.plug_and_wait(t1, 1, prototypes::ID20LA);
    w.plug_and_wait(t2, 0, prototypes::BMP180);

    for t in [t1, t2] {
        let addr = w.thing_addr(t);
        let q = w.manager_mut().query_drivers(addr);
        let mgr_node = w.manager().node;
        let now = w.now();
        w.net.send(now, mgr_node, q);
    }
    w.run_until_idle();

    let inv = w.manager().inventory();
    assert_eq!(inv[&w.thing_addr(t1)].len(), 2);
    assert_eq!(inv[&w.thing_addr(t2)].len(), 1);
    assert_eq!(inv[&w.thing_addr(t2)][0].0, prototypes::BMP180.raw());
}

#[test]
fn spi_extension_peripheral_works_end_to_end() {
    // The MAX6675 demonstrates adding a fifth peripheral family: same
    // pipeline, no changes anywhere else.
    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let thing = w.add_thing();
    let client = w.add_client();
    w.star_topology();

    let max6675 = micropnp::hw::id::DeviceTypeId::new(0x0a0b_bf03);
    w.thing_mut(thing).runtime.hw.env.temperature_c = 150.0; // a kiln
    w.plug_and_wait(thing, 0, max6675);
    let v = w.client_read(client, thing, max6675).unwrap();
    let Value::F32(c) = v else { panic!("{v:?}") };
    assert!((c - 150.0).abs() < 0.5, "thermocouple {c}");
}

#[test]
fn streams_to_multiple_subscribing_clients() {
    let config = WorldConfig {
        stream_samples: 4,
        ..WorldConfig::default()
    };
    let mut w = World::new(config);
    w.add_manager();
    let thing = w.add_thing();
    let c1 = w.add_client();
    let c2 = w.add_client();
    w.star_topology();
    w.thing_mut(thing).runtime.hw.env.temperature_c = 19.0;
    w.plug_and_wait(thing, 0, prototypes::TMP36);

    // Client 1 establishes the stream; client 2 joins the same group once
    // it learns of it (here: by also sending a stream request, which maps
    // to the same group).
    let samples1 = w.client_stream(c1, thing, prototypes::TMP36);
    assert_eq!(samples1.len(), 4);

    let samples2 = w.client_stream(c2, thing, prototypes::TMP36);
    assert_eq!(samples2.len(), 4);
    // Client 1 remained in the group and heard the second run too.
    assert!(w.client(c1).stream_data.len() >= 8);
}

#[test]
fn radio_energy_accrues_on_the_whole_path() {
    let mut w = World::new(WorldConfig::default());
    let mgr = w.add_manager();
    let relay = w.add_thing();
    let leaf = w.add_thing();
    w.link(mgr, w.thing_node(relay), LinkQuality::PERFECT);
    w.link(
        w.thing_node(relay),
        w.thing_node(leaf),
        LinkQuality::PERFECT,
    );
    w.build_tree(mgr);

    w.plug_and_wait(leaf, 0, prototypes::TMP36);
    let relay_node = w.thing_node(relay);
    let leaf_node = w.thing_node(leaf);
    assert!(w.net.radio_energy_j(leaf_node) > 0.0, "leaf transmitted");
    assert!(w.net.radio_energy_j(relay_node) > 0.0, "relay forwarded");
    // The leaf's MCU also consumed energy running the pipeline.
    assert!(w.thing(leaf).runtime.cpu_energy_j() > 0.0);
}

#[test]
fn two_hundred_plugs_remain_stable() {
    // Longevity: repeated plug/unplug cycles must not leak drivers,
    // wedge the event loop or drift the driver cache.
    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let thing = w.add_thing();
    w.add_client();
    w.star_topology();

    for round in 0..200 {
        let dev = if round % 2 == 0 {
            prototypes::TMP36
        } else {
            prototypes::BMP180
        };
        w.plug(thing, 0, dev);
        w.run_until_idle();
        assert_eq!(
            w.thing(thing).served_peripherals(),
            vec![dev.raw()],
            "round {round}"
        );
        w.unplug(thing, 0);
        w.run_until_idle();
        assert!(w.thing(thing).served_peripherals().is_empty());
    }
    // Drivers were fetched over the air exactly once per type.
    assert_eq!(w.manager().uploads_served, 2);
    assert_eq!(w.thing(thing).board().scans(), 400);
}
