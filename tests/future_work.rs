//! Tests for the §9 future-work features the reproduction implements:
//! location-aware discovery, the vendor/product identifier structure,
//! driver validation on the OTA path and multi-hop multicast discovery.

use micropnp::core::world::{World, WorldConfig};
use micropnp::hw::id::prototypes;
use micropnp::hw::vendor::{DeviceClass, StructuredId, VendorId};
use micropnp::net::link::LinkQuality;

#[test]
fn location_aware_discovery_filters_by_tag() {
    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let lab = w.add_thing();
    let greenhouse = w.add_thing();
    let client = w.add_client();
    w.star_topology();

    w.set_location(lab, "lab");
    w.set_location(greenhouse, "greenhouse");
    w.plug_and_wait(lab, 0, prototypes::TMP36);
    w.plug_and_wait(greenhouse, 0, prototypes::TMP36);

    // Unfiltered discovery sees both.
    let all = w.client_discover(client, prototypes::TMP36);
    assert_eq!(all.len(), 2);

    // Location-filtered discovery sees exactly one.
    let green = w.client_discover_at(client, prototypes::TMP36, "greenhouse");
    assert_eq!(green, vec![w.thing_addr(greenhouse)]);
    let nowhere = w.client_discover_at(client, prototypes::TMP36, "attic");
    assert!(nowhere.is_empty());
}

#[test]
fn advertisements_carry_the_location_tlv() {
    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let thing = w.add_thing();
    let client = w.add_client();
    w.star_topology();
    w.set_location(thing, "rooftop");
    w.plug_and_wait(thing, 0, prototypes::BMP180);

    let ad = &w.client(client).discovered[0];
    let loc = ad
        .advert
        .tlvs
        .iter()
        .find(|t| t.ty == micropnp::net::tlv::TlvType::Location)
        .and_then(|t| t.as_text());
    assert_eq!(loc, Some("rooftop"));
}

#[test]
fn structured_ids_flow_through_the_whole_pipeline() {
    // A vendor-structured identifier is just a flat id underneath: it
    // must solve to resistors, identify on a board and produce a working
    // multicast group.
    let sid = StructuredId::new(VendorId(0x0a0b), DeviceClass::Identification, 0xf03);
    let flat = sid.device_id();
    assert_eq!(StructuredId::from_device_id(flat), sid);

    let solved = micropnp::hw::solver::solve_resistors(flat).unwrap();
    assert!(micropnp::hw::solver::verify_solution(&solved));

    let group = micropnp::net::addr::peripheral_group(0x2001_0db8_0000, flat.raw());
    assert_eq!(micropnp::net::addr::peripheral_of(group), Some(flat.raw()));
}

#[test]
fn manager_rejects_invalid_driver_uploads() {
    use micropnp::dsl::image::{BusKind, DriverImage, GlobalSlot, HandlerEntry};

    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    w.star_topology();

    // A stack-bomb image: pushes without bound inside a loop.
    let bomb = DriverImage {
        device_id: 0x7777_0001,
        bus: BusKind::None,
        imports: vec![],
        globals: vec![GlobalSlot {
            ty: micropnp::dsl::ast::Type::U8,
            array_len: None,
        }],
        handlers: vec![
            HandlerEntry {
                event_id: 0,
                n_params: 0,
                offset: 0,
            },
            HandlerEntry {
                event_id: 1,
                n_params: 0,
                offset: 5,
            },
        ],
        // 0: PUSH8 1; 2: JMP -5 (back to 0); 5: RET.
        code: vec![0x01, 1, 0x50, 0xfb, 0xff, 0x63],
    };
    let err = w.manager_mut().publish_driver(bomb).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("stack") || msg.contains("inconsistent"),
        "unexpected verdict: {msg}"
    );

    // A well-formed third-party driver is accepted.
    let good = micropnp::dsl::compile_source(
        "event init():\n    return;\nevent destroy():\n    return;\n",
        0x7777_0002,
    )
    .unwrap();
    w.manager_mut().publish_driver(good).unwrap();
}

#[test]
fn multihop_discovery_latency_grows_with_depth() {
    // §9: "test the performance of multicast service discovery in
    // heterogeneous and multi-hop network environments". Chain networks
    // of increasing depth: discovery must still work, with monotonically
    // increasing round-trip latency.
    let mut last_latency = 0.0;
    for depth in 1..=4usize {
        let mut w = World::new(WorldConfig::default());
        let mgr = w.add_manager();
        let mut prev = mgr;
        let mut leaf = None;
        for _ in 0..depth {
            let t = w.add_thing();
            w.link(prev, w.thing_node(t), LinkQuality::PERFECT);
            prev = w.thing_node(t);
            leaf = Some(t);
        }
        let client = w.add_client();
        w.link(mgr, w.client(client).node, LinkQuality::PERFECT);
        w.build_tree(mgr);

        let leaf = leaf.unwrap();
        w.plug_and_wait(leaf, 0, prototypes::TMP36);

        let t0 = w.now();
        let found = w.client_discover(client, prototypes::TMP36);
        let latency = w.now().since(t0).as_millis_f64();
        assert_eq!(found.len(), 1, "depth {depth}");
        assert!(
            latency > last_latency,
            "depth {depth}: {latency} ms not > {last_latency} ms"
        );
        last_latency = latency;
    }
}

#[test]
fn multihop_lossy_multicast_delivery_degrades_gracefully() {
    // Lossy multi-hop: SMRF has no retries on the down-tree broadcast, so
    // delivery is probabilistic but the network must never wedge.
    let mut w = World::new(WorldConfig::default());
    let mgr = w.add_manager();
    let relay = w.add_thing();
    let leaf = w.add_thing();
    let client = w.add_client();
    w.link(mgr, w.thing_node(relay), LinkQuality::new(0.9));
    w.link(
        w.thing_node(relay),
        w.thing_node(leaf),
        LinkQuality::new(0.9),
    );
    w.link(mgr, w.client(client).node, LinkQuality::new(0.9));
    w.build_tree(mgr);

    w.plug_and_wait(leaf, 0, prototypes::TMP36);
    let mut hits = 0;
    for _ in 0..10 {
        if !w.client_discover(client, prototypes::TMP36).is_empty() {
            hits += 1;
        }
    }
    assert!(hits >= 5, "only {hits}/10 discoveries succeeded");
}

#[test]
fn over_the_air_driver_update_replaces_running_driver() {
    use micropnp::net::msg::Value;

    let mut w = World::new(WorldConfig::default());
    w.add_manager();
    let thing = w.add_thing();
    let client = w.add_client();
    w.star_topology();
    w.thing_mut(thing).runtime.hw.env.temperature_c = 25.0;
    w.plug_and_wait(thing, 0, prototypes::TMP36);

    // v1 reports degC; the vendor ships v2 reporting deci-degC.
    let v2_src = "\
import adc;
uint16_t raw;
float temp;
event init():
    signal adc.init();
event destroy():
    return;
event read():
    signal adc.read();
event sampleDone(uint16_t r):
    raw = r;
    temp = (((raw * 3.3) / 1023.0 - 0.5) * 100.0) * 10.0;
    return temp;
error timeOut():
    return;
";
    let v2 = micropnp::dsl::compile_source(v2_src, prototypes::TMP36.raw()).unwrap();
    w.manager_mut().publish_driver(v2).unwrap();

    // The manager learns who runs the driver, then pushes the update.
    let addr = w.thing_addr(thing);
    let q = w.manager_mut().query_drivers(addr);
    let mgr_node = w.manager().node;
    let now = w.now();
    w.net.send(now, mgr_node, q);
    w.run_until_idle();
    let pushes = w.manager_mut().push_update(prototypes::TMP36);
    assert_eq!(pushes.len(), 1);
    let now = w.now();
    for p in pushes {
        w.net.send(now, mgr_node, p);
    }
    w.run_until_idle();

    // The updated driver answers in deci-degC.
    let v = w.client_read(client, thing, prototypes::TMP36).unwrap();
    let Value::F32(deci) = v else { panic!("{v:?}") };
    assert!(
        (deci - 250.0).abs() < 15.0,
        "expected ~250 deci-degC, got {deci}"
    );

    // The registry recorded the new version.
    let entry = w.manager().registry.get(prototypes::TMP36).unwrap();
    assert!(entry.driver_versions.len() >= 2);
}
