//! The third-party vendor story (paper §3.3): allocate an identifier in
//! the global address space, get the resistor bill of materials from the
//! online tool, build the peripheral, write a driver in the DSL, publish
//! it — and have an off-the-shelf Thing identify and serve it.

use micropnp::core::registry::AddressSpace;
use micropnp::dsl::compile_source;
use micropnp::hw::board::{ChannelResult, ControlBoard};
use micropnp::hw::channels::ChannelId;
use micropnp::hw::components::ToleranceClass;
use micropnp::hw::id::DeviceTypeId;
use micropnp::hw::peripheral::{Interconnect, PeripheralBoard};
use micropnp::sim::{SimRng, SimTime};

/// A fictional vendor's soil-moisture sensor driver.
const SOIL_DRIVER: &str = "\
# Soil moisture sensor: ratiometric ADC reading in percent.
import adc;

uint16_t raw;
float percent;

event init():
    signal adc.init();

event destroy():
    return;

event read():
    signal adc.read();

event sampleDone(uint16_t r):
    raw = r;
    percent = (raw * 100.0) / 1023.0;
    return percent;

error timeOut():
    return;
";

#[test]
fn vendor_pipeline_from_allocation_to_identification() {
    let mut rng = SimRng::seed(0xbeef);

    // 1. Allocate an identifier at www.micropnp.com.
    let mut registry = AddressSpace::new();
    let device_id = registry
        .allocate_any(
            &mut rng,
            "A. Vendor",
            "Soil Sensors GmbH",
            "a.vendor@example.org",
            "https://example.org/soil",
        )
        .expect("free ids exist");

    // 2. The online tool emits the resistor set for the PCB.
    let bom = registry.bill_of_materials(device_id).unwrap();
    assert!(bom.contains("R1A") && bom.contains("R4B"), "{bom}");

    // 3. The vendor writes a driver in the DSL and uploads it; the
    //    allocation becomes permanent.
    let image = compile_source(SOIL_DRIVER, device_id.raw()).expect("driver compiles");
    assert!(image.size_bytes() < 256, "OTA-friendly size");
    registry.record_driver(device_id, 1).unwrap();
    assert_eq!(
        registry.collect_provisional(),
        0,
        "permanent ids survive GC"
    );

    // 4. A manufactured peripheral with precision resistors identifies on
    //    a stock control board.
    let peripheral = PeripheralBoard::manufacture(
        device_id,
        Interconnect::Adc,
        ToleranceClass::PointOnePercent,
        &mut rng,
    )
    .expect("BOM is realisable");
    let mut board = ControlBoard::sample(&mut rng);
    board.plug(ChannelId(0), peripheral).unwrap();
    let outcome = board.scan(SimTime::ZERO, 25.0);
    assert_eq!(
        outcome.channels[0].result,
        ChannelResult::Identified(device_id),
        "stock board must identify the vendor peripheral"
    );
}

#[test]
fn vendor_driver_serves_reads_through_the_runtime() {
    use micropnp::bus::adc::AnalogSource;
    use micropnp::bus::Environment;
    use micropnp::vm::runtime::{PendingKind, Runtime};

    /// The vendor's sensor element: 0–3.3 V proportional to moisture.
    struct SoilProbe;

    impl AnalogSource for SoilProbe {
        fn voltage(&self, env: &Environment, _rng: &mut SimRng) -> f64 {
            // Reuse humidity as ground truth for the test.
            env.humidity_rh / 100.0 * 3.3
        }
    }

    let mut rt = Runtime::new(77);
    rt.hw.env.humidity_rh = 42.0;
    rt.hw.analog_sources.insert(0, Box::new(SoilProbe));
    let image = compile_source(SOIL_DRIVER, 0x5011_0001).unwrap();
    let slot = rt.install_driver(image, 0).unwrap();
    rt.run_until_idle();
    rt.request(slot, PendingKind::Read, vec![]);
    let done = rt.run_until_idle();
    let micropnp::vm::vm::ReturnValue::Scalar(cell) = done[0].value.clone().unwrap() else {
        panic!("expected scalar");
    };
    assert!((cell.as_f32() - 42.0).abs() < 1.0, "{}", cell.as_f32());
}

#[test]
fn reserved_and_duplicate_allocations_are_refused() {
    let mut registry = AddressSpace::new();
    assert!(registry
        .allocate(DeviceTypeId::ALL_PERIPHERALS, "x", "y", "z", "u")
        .is_err());
    registry
        .allocate(DeviceTypeId::new(0x1234_5678), "x", "y", "z", "u")
        .unwrap();
    assert!(registry
        .allocate(DeviceTypeId::new(0x1234_5678), "x", "y", "z", "u")
        .is_err());
}
